//! Crash-safe controller state on top of [`mct_persist`].
//!
//! This module layers the *typed* controller schema over the raw
//! checksummed container in `mct-persist`: every decision-relevant state
//! transition the controller makes — wear accounting, fitted model
//! coefficients, phase history, refit-elision bank refreshes, degradation
//! ladder moves — becomes a [`StateRecord`] appended to the write-ahead
//! log, and every segment boundary compacts the log into a snapshot.
//!
//! ## The recovery contract
//!
//! Recovery is *verified deterministic re-execution*. The controller is
//! already bit-deterministic from `(config, seed, workload)`, so a
//! resumed run does not "load state and continue from the middle" — it
//! re-runs from instruction zero, and while its cursor is inside the
//! recovered record prefix, every record it would have written is
//! **compared** against the log instead of appended. Any mismatch is a
//! hard panic (split-brain state is worse than no state). Two useful
//! things fall out:
//!
//! * the recovered run provably converges on the pre-crash trajectory
//!   before a single new byte is persisted, which is what makes the
//!   kill-and-recover harness's "bit-identical decision trace" assertion
//!   meaningful rather than vacuous; and
//! * fresh fits recorded in the prefix restore their persisted model
//!   coefficients instead of refitting
//!   ([`crate::predictor::MetricsPredictor::from_state`]),
//!   so the save/restore path is exercised — and pinned to the
//!   bit-identity contract — on every recovery, not just in unit tests.
//!
//! A log that ends in [`StateRecord::RunCompleted`] is a *clean* store:
//! resuming from it warm-starts the next run — the fitted models from the
//! snapshot pre-seed the controller's refit-elision bank, and segments
//! that hit the bank skip their sampling period outright.
//!
//! Snapshots are skipped while the cursor is still inside the prefix:
//! compacting mid-verification would discard WAL records that have not
//! been re-checked yet. Snapshot bodies also prune model payloads from
//! all but the last [`SNAPSHOT_MODEL_SLOTS`] fresh fits (matching the
//! controller's elision-bank depth), so [`records_match`] treats a pruned
//! persisted fit as equal to a full re-emitted one.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use mct_ml::SavedRegressor;
use mct_persist::{fnv1a64, CrashPoint, PersistError, Replay, StateStore, TornTail};
use mct_sim::stats::Metrics;
use mct_sim::WearSnapshot;

use crate::config::NvmConfig;
use crate::controller::ControllerConfig;
use crate::degrade::DegradationStage;
use crate::predictor::ModelKind;

/// Version of the typed record schema layered on the container format
/// ([`mct_persist::FORMAT_VERSION`] guards the byte layout; this guards
/// the JSON record vocabulary). Stamped into every
/// [`StateRecord::RunStarted`] and snapshot body and checked on resume.
pub const STATE_SCHEMA_VERSION: u32 = 1;

/// How many trailing fresh-fit records keep their full model payload in
/// a snapshot body. Matches the controller's refit-elision bank depth:
/// older models could never be reused anyway.
pub const SNAPSHOT_MODEL_SLOTS: usize = 4;

/// [`Metrics`] as raw IEEE-754 bit patterns.
///
/// Lifetime can legitimately be `+inf` (no wear observed), which JSON
/// cannot represent; and the recovery contract is *bit* identity, so
/// persisted floats must round-trip exactly. Bit patterns give both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitMetrics {
    /// `Metrics::ipc` bits.
    pub ipc: u64,
    /// `Metrics::lifetime_years` bits (may encode `+inf`).
    pub lifetime_years: u64,
    /// `Metrics::energy_j` bits.
    pub energy_j: u64,
}

impl From<Metrics> for BitMetrics {
    fn from(m: Metrics) -> BitMetrics {
        BitMetrics {
            ipc: m.ipc.to_bits(),
            lifetime_years: m.lifetime_years.to_bits(),
            energy_j: m.energy_j.to_bits(),
        }
    }
}

impl BitMetrics {
    /// The metrics these bits encode.
    #[must_use]
    pub fn to_metrics(self) -> Metrics {
        Metrics {
            ipc: f64::from_bits(self.ipc),
            lifetime_years: f64::from_bits(self.lifetime_years),
            energy_j: f64::from_bits(self.energy_j),
        }
    }
}

/// A fitted [`crate::predictor::MetricsPredictor`] in serializable
/// form: the model kind,
/// the normalization baseline (as bits), and one [`SavedRegressor`] per
/// objective dimension. Corpus-backed kinds have no such form — they
/// refit deterministically from the corpus on recovery instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorState {
    /// The predictor family.
    pub kind: ModelKind,
    /// Normalization baseline captured at fit time, if any.
    pub baseline: Option<BitMetrics>,
    /// Per-objective fitted models (ipc, lifetime, energy).
    pub models: Vec<SavedRegressor>,
}

/// One controller state transition in the write-ahead log.
///
/// Record order within a run is fully determined by `(config, seed,
/// workload)` — that determinism is what lets recovery verify a replayed
/// prefix against re-execution record by record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateRecord {
    /// First record of every run: identity of the run the log belongs to.
    RunStarted {
        /// [`STATE_SCHEMA_VERSION`] at write time.
        schema: u32,
        /// Controller RNG seed.
        seed: u64,
        /// Predictor family.
        model: ModelKind,
        /// Total detailed instruction budget.
        total_insts: u64,
        /// [`config_digest`] of the full controller config.
        config_digest: u64,
    },
    /// A sampling→optimize→test segment began.
    SegmentStarted {
        /// 0-based segment index.
        segment: u64,
        /// Measured-instruction clock at segment start.
        executed: u64,
    },
    /// The static baseline was measured (normalization reference).
    BaselineMeasured {
        /// Segment index.
        segment: u64,
        /// Measured baseline metrics.
        metrics: BitMetrics,
        /// Instructions in the measurement window.
        insts: u64,
        /// Whether the sparse-phase window extension kicked in.
        extended: bool,
    },
    /// The segment's predictor is ready — freshly fitted, restored, or
    /// reused from the elision bank. Emitted for *every* segment so the
    /// record sequence is phase-aligned regardless of elision.
    FitCompleted {
        /// Segment index.
        segment: u64,
        /// True when the refit-elision bank supplied the model.
        elided: bool,
        /// Workload intensity (accesses/kinst) bits at fit time.
        apki: u64,
        /// [`crate::phase::phase_signature`] of that intensity.
        signature: u64,
        /// Fitted model coefficients for fresh fits of serializable
        /// kinds; `None` for elided fits, corpus-backed kinds, and fits
        /// pruned from old snapshot entries.
        model: Option<PredictorState>,
    },
    /// The optimizer chose a configuration.
    DecisionMade {
        /// Segment index.
        segment: u64,
        /// The chosen configuration (after wear-quota fixup).
        config: NvmConfig,
        /// Predicted metrics for the choice.
        predicted: BitMetrics,
        /// Whether the optimizer fell back to the static baseline.
        fell_back: bool,
        /// False for the segment's primary decision; true for an
        /// in-place re-decision forced by the degradation ladder.
        refit: bool,
    },
    /// A periodic testing-period health check ran.
    HealthChecked {
        /// Segment index.
        segment: u64,
        /// 1-based health-check ordinal within the segment.
        check: u32,
        /// Whether the reading passed.
        passed: bool,
        /// Testing-so-far IPC bits.
        testing_ipc: u64,
        /// Accumulated baseline reference IPC bits.
        baseline_ipc: u64,
    },
    /// The degradation ladder escalated a rung.
    LadderMoved {
        /// Segment index.
        segment: u64,
        /// Rung before the failed check.
        from: DegradationStage,
        /// Rung after.
        to: DegradationStage,
        /// Total failed checks observed by the ladder so far.
        failures: u64,
    },
    /// Wear accounting at segment end: period deltas plus the live
    /// meter counters.
    WearDelta {
        /// Segment index.
        segment: u64,
        /// Wear units consumed by this segment's sampling period (bits).
        sampling_wear: u64,
        /// Wear units consumed by this segment's testing period (bits).
        testing_wear: u64,
        /// Wear-meter counters over the segment's final measured region.
        meter: WearSnapshot,
    },
    /// A segment finished (by phase change, re-sample, or budget).
    SegmentCompleted {
        /// Segment index.
        segment: u64,
        /// Configuration in force at segment end.
        chosen: NvmConfig,
        /// Whether the ladder reverted this segment to the baseline.
        health_fallback: bool,
        /// Whether the segment's fit was elided.
        fit_elided: bool,
        /// Whether the segment skipped sampling on a warm-started model.
        warm_started: bool,
        /// Sampling instructions spent.
        sampling_insts: u64,
        /// Testing instructions spent.
        testing_insts: u64,
        /// Realized testing metrics.
        testing: BitMetrics,
    },
    /// The run finished; a log ending here is warm-start eligible.
    RunCompleted {
        /// Total measured instructions.
        executed: u64,
        /// Final chosen configuration.
        chosen: NvmConfig,
        /// Segments completed.
        segments: u64,
        /// Aggregate testing metrics.
        final_metrics: BitMetrics,
    },
}

impl StateRecord {
    /// Stable lower-snake label for reports and error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            StateRecord::RunStarted { .. } => "run_started",
            StateRecord::SegmentStarted { .. } => "segment_started",
            StateRecord::BaselineMeasured { .. } => "baseline_measured",
            StateRecord::FitCompleted { .. } => "fit_completed",
            StateRecord::DecisionMade { .. } => "decision_made",
            StateRecord::HealthChecked { .. } => "health_checked",
            StateRecord::LadderMoved { .. } => "ladder_moved",
            StateRecord::WearDelta { .. } => "wear_delta",
            StateRecord::SegmentCompleted { .. } => "segment_completed",
            StateRecord::RunCompleted { .. } => "run_completed",
        }
    }
}

/// Snapshot payload: the complete record history of the run so far,
/// with model payloads pruned from all but the newest fits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotBody {
    schema: u32,
    records: Vec<StateRecord>,
}

/// Persistence settings carried inside
/// [`ControllerConfig`](crate::controller::ControllerConfig).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistConfig {
    /// Store directory (holds `wal.bin` / `snap.bin`).
    pub dir: String,
    /// Resume from existing state: verify-replay an interrupted log, or
    /// warm-start from a clean one. False starts a fresh log, clobbering
    /// whatever the directory held.
    #[serde(default)]
    pub resume: bool,
    /// Deterministic crash injection for the kill-and-recover harness.
    #[serde(default)]
    pub crash_point: CrashPoint,
}

impl PersistConfig {
    /// Persist to `dir`, starting a fresh log.
    #[must_use]
    pub fn fresh(dir: impl Into<String>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            resume: false,
            crash_point: CrashPoint::None,
        }
    }

    /// Persist to `dir`, resuming from whatever state it holds.
    #[must_use]
    pub fn resume_from(dir: impl Into<String>) -> PersistConfig {
        PersistConfig {
            dir: dir.into(),
            resume: true,
            crash_point: CrashPoint::None,
        }
    }
}

/// Digest of a controller configuration, stamped into
/// [`StateRecord::RunStarted`] so a resumed run cannot silently verify
/// against a log written under different parameters.
///
/// The `persist` block itself is excluded (the same run is recovered
/// under `resume: true` and possibly a different crash point), and the
/// `system` block is `#[serde(skip)]` upstream, so the digest covers the
/// decision-relevant controller knobs.
#[must_use]
pub fn config_digest(cfg: &ControllerConfig) -> u64 {
    let mut stripped = cfg.clone();
    stripped.persist = None;
    // Serializing a plain config struct cannot fail; map the impossible
    // error to a sentinel rather than panicking in a digest helper.
    serde_json::to_string(&stripped).map_or(0, |json| fnv1a64(json.as_bytes()))
}

/// Whether an emitted record satisfies a persisted one.
///
/// Equality, except that a persisted [`StateRecord::FitCompleted`] whose
/// model payload was pruned by snapshot compaction matches a re-emitted
/// fit that carries the full model (and only then — when both sides
/// carry models they must agree exactly, which is what pins model
/// serialization to the bit-identity contract).
#[must_use]
pub fn records_match(persisted: &StateRecord, emitted: &StateRecord) -> bool {
    if persisted == emitted {
        return true;
    }
    match (persisted, emitted) {
        (
            StateRecord::FitCompleted { model: None, .. },
            StateRecord::FitCompleted { model: Some(_), .. },
        ) => {
            let mut stripped = emitted.clone();
            if let StateRecord::FitCompleted { model, .. } = &mut stripped {
                *model = None;
            }
            *persisted == stripped
        }
        _ => false,
    }
}

/// Why a store could not be recovered or verified.
#[derive(Debug)]
pub enum RecoverError {
    /// The underlying container failed (I/O, corruption, bad version).
    Store(PersistError),
    /// A record or snapshot body did not parse as the typed schema.
    Parse {
        /// Which record (0-based over the recovered prefix), or
        /// `usize::MAX` for the snapshot body.
        index: usize,
        /// Parser detail.
        detail: String,
    },
    /// The typed schema version in the log is not this build's.
    SchemaVersion {
        /// Version found in the log.
        found: u32,
        /// [`STATE_SCHEMA_VERSION`] supported here.
        supported: u32,
    },
    /// The log does not begin with [`StateRecord::RunStarted`].
    NotARun,
    /// The log belongs to a different run configuration.
    ConfigMismatch {
        /// What the resuming run would write.
        expected: String,
        /// What the log holds.
        found: String,
    },
    /// Re-execution produced a record the log disagrees with.
    Diverged {
        /// 0-based index into the recovered prefix.
        index: usize,
        /// The persisted record.
        persisted: String,
        /// The record re-execution emitted.
        emitted: String,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Store(e) => write!(f, "state store: {e}"),
            RecoverError::Parse { index, detail } => {
                if *index == usize::MAX {
                    write!(f, "snapshot body does not parse: {detail}")
                } else {
                    write!(f, "record {index} does not parse: {detail}")
                }
            }
            RecoverError::SchemaVersion { found, supported } => write!(
                f,
                "state schema v{found} is not supported (this build reads v{supported}); \
                 refusing to guess at record semantics"
            ),
            RecoverError::NotARun => {
                write!(f, "log does not begin with a run_started record")
            }
            RecoverError::ConfigMismatch { expected, found } => write!(
                f,
                "log belongs to a different run: expected {expected}, found {found}"
            ),
            RecoverError::Diverged {
                index,
                persisted,
                emitted,
            } => write!(
                f,
                "re-execution diverged from the log at record {index}: \
                 persisted {persisted} but re-execution produced {emitted}"
            ),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<PersistError> for RecoverError {
    fn from(e: PersistError) -> RecoverError {
        RecoverError::Store(e)
    }
}

/// Decode the full state-record trace a store directory holds: the
/// snapshot body followed by the post-snapshot WAL records. This is the
/// raw decision trace recovery works from — test harnesses use it to
/// compare persisted traces record by record.
///
/// # Errors
///
/// Fails if the container is corrupt, the snapshot's schema version is
/// unsupported, or any record fails to parse.
pub fn decode_dir(dir: &Path) -> Result<Vec<StateRecord>, RecoverError> {
    let replay = StateStore::replay_dir(dir)?;
    decode_replay(&replay)
}

/// Decode the full recovered record prefix (snapshot body followed by
/// post-snapshot WAL records) from a container replay.
fn decode_replay(replay: &Replay) -> Result<Vec<StateRecord>, RecoverError> {
    let mut out: Vec<StateRecord> = Vec::new();
    if let Some(snap) = &replay.snapshot {
        let text = std::str::from_utf8(snap).map_err(|e| RecoverError::Parse {
            index: usize::MAX,
            detail: format!("snapshot is not UTF-8: {e}"),
        })?;
        let body: SnapshotBody = serde_json::from_str(text).map_err(|e| RecoverError::Parse {
            index: usize::MAX,
            detail: e.to_string(),
        })?;
        if body.schema != STATE_SCHEMA_VERSION {
            return Err(RecoverError::SchemaVersion {
                found: body.schema,
                supported: STATE_SCHEMA_VERSION,
            });
        }
        out.extend(body.records);
    }
    out.extend(replay.decode_records::<StateRecord>()?);
    Ok(out)
}

/// Harvest warm-start models from a clean (completed) run's records:
/// fresh fits with persisted models, invalidated — exactly as the live
/// elision bank is — by any ladder-forced refit or revert after them,
/// capped to the newest [`SNAPSHOT_MODEL_SLOTS`].
fn harvest_warm(records: &[StateRecord]) -> Vec<(u64, PredictorState)> {
    let mut bank: Vec<(u64, PredictorState)> = Vec::new();
    for rec in records {
        match rec {
            StateRecord::FitCompleted {
                elided: false,
                apki,
                model: Some(state),
                ..
            } => bank.push((*apki, state.clone())),
            StateRecord::LadderMoved { to, .. } if *to >= DegradationStage::Refit => {
                bank.clear();
            }
            _ => {}
        }
    }
    if bank.len() > SNAPSHOT_MODEL_SLOTS {
        bank.drain(..bank.len() - SNAPSHOT_MODEL_SLOTS);
    }
    bank
}

/// Strip model payloads from all but the newest
/// [`SNAPSHOT_MODEL_SLOTS`] fresh fits, for snapshot compaction.
fn prune_models(records: &[StateRecord]) -> Vec<StateRecord> {
    let mut out = records.to_vec();
    let carriers: Vec<usize> = out
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            matches!(r, StateRecord::FitCompleted { model: Some(_), .. }).then_some(i)
        })
        .collect();
    let strip = carriers.len().saturating_sub(SNAPSHOT_MODEL_SLOTS);
    for &i in &carriers[..strip] {
        if let StateRecord::FitCompleted { model, .. } = &mut out[i] {
            *model = None;
        }
    }
    out
}

/// The controller's live persistence session: verified replay of a
/// recovered prefix, then append-ahead logging, with segment-boundary
/// snapshot compaction and warm-start harvesting. See the module docs
/// for the recovery contract.
#[derive(Debug)]
pub struct PersistSession {
    store: StateStore,
    /// Recovered records still to be verified against re-execution.
    prefix: Vec<StateRecord>,
    /// How many prefix records re-execution has matched so far.
    cursor: usize,
    /// Full record history of this run (verified + appended), the
    /// snapshot source.
    mirror: Vec<StateRecord>,
    /// Warm-start bank harvested from a clean prior run.
    warm: Vec<(u64, PredictorState)>,
    /// Records recovered from disk at open.
    replayed: usize,
    /// Whether the container dropped a torn tail at open.
    torn: Option<TornTail>,
    /// Snapshots actually written this session.
    snapshots: u64,
}

impl PersistSession {
    /// Open (or create) the store and prepare the session.
    ///
    /// `run_started` is the record the starting run is about to emit; on
    /// resume it is checked against the log's own `run_started` before
    /// any verification begins, so a config/seed mismatch fails with a
    /// specific error instead of a generic divergence.
    ///
    /// # Errors
    /// Any [`RecoverError`]: container-level failure, unparseable or
    /// version-mismatched records, or a log from a different run.
    pub fn begin(
        cfg: &PersistConfig,
        run_started: &StateRecord,
    ) -> Result<PersistSession, RecoverError> {
        let dir = Path::new(&cfg.dir);
        if !cfg.resume {
            let store = StateStore::create(dir)?;
            return PersistSession::fresh(store, cfg.crash_point, run_started);
        }
        let (mut store, replay) = StateStore::open(dir)?;
        let prefix = decode_replay(&replay)?;
        if prefix.is_empty() {
            // Nothing recorded yet: resuming an empty store is a fresh run.
            store.set_crash_point(cfg.crash_point);
            let mut session = PersistSession {
                store,
                prefix: Vec::new(),
                cursor: 0,
                mirror: Vec::new(),
                warm: Vec::new(),
                replayed: 0,
                torn: replay.torn,
                snapshots: 0,
            };
            session.emit(run_started.clone())?;
            return Ok(session);
        }
        check_run_identity(&prefix[0], run_started)?;
        if matches!(prefix.last(), Some(StateRecord::RunCompleted { .. })) {
            // Clean completion: harvest the warm bank, then start a
            // fresh log for the new run.
            let warm = harvest_warm(&prefix);
            drop(store);
            let store = StateStore::create(dir)?;
            let mut session = PersistSession::fresh(store, cfg.crash_point, run_started)?;
            session.warm = warm;
            return Ok(session);
        }
        // Interrupted run: the recovered records become the verification
        // prefix; `emit` compares instead of appending until it is spent.
        store.set_crash_point(cfg.crash_point);
        let replayed = prefix.len();
        let mut session = PersistSession {
            store,
            prefix,
            cursor: 0,
            mirror: Vec::new(),
            warm: Vec::new(),
            replayed,
            torn: replay.torn,
            snapshots: 0,
        };
        session.emit(run_started.clone())?;
        Ok(session)
    }

    fn fresh(
        mut store: StateStore,
        crash: CrashPoint,
        run_started: &StateRecord,
    ) -> Result<PersistSession, RecoverError> {
        store.set_crash_point(crash);
        let mut session = PersistSession {
            store,
            prefix: Vec::new(),
            cursor: 0,
            mirror: Vec::new(),
            warm: Vec::new(),
            replayed: 0,
            torn: None,
            snapshots: 0,
        };
        session.emit(run_started.clone())?;
        Ok(session)
    }

    /// Record one state transition: verified against the recovered
    /// prefix while the cursor is inside it, appended to the WAL after.
    ///
    /// # Errors
    /// [`RecoverError::Diverged`] when re-execution disagrees with the
    /// log; [`RecoverError::Store`] on container failure.
    pub fn emit(&mut self, record: StateRecord) -> Result<(), RecoverError> {
        if self.cursor < self.prefix.len() {
            let persisted = &self.prefix[self.cursor];
            if !records_match(persisted, &record) {
                return Err(RecoverError::Diverged {
                    index: self.cursor,
                    persisted: format!("{persisted:?}"),
                    emitted: format!("{record:?}"),
                });
            }
            self.cursor += 1;
        } else {
            self.store.append_record(&record)?;
        }
        self.mirror.push(record);
        Ok(())
    }

    /// The model persisted for the next fresh fit in the unverified
    /// prefix, if it is for `segment`. The controller restores it
    /// instead of refitting; the subsequent [`PersistSession::emit`] of
    /// the restored fit's record re-verifies the match.
    #[must_use]
    pub fn replayed_fit(&self, segment: u64) -> Option<PredictorState> {
        self.prefix[self.cursor..].iter().find_map(|r| match r {
            StateRecord::FitCompleted {
                segment: s,
                elided: false,
                model: Some(state),
                ..
            } if *s == segment => Some(state.clone()),
            StateRecord::FitCompleted { .. } => None,
            _ => None,
        })
    }

    /// Compact the log into a snapshot (model payloads pruned to the
    /// newest [`SNAPSHOT_MODEL_SLOTS`] fits). A no-op while the cursor
    /// is still inside the recovery prefix — compaction would discard
    /// WAL records that re-execution has not verified yet — and after an
    /// injected crash.
    ///
    /// # Errors
    /// [`RecoverError::Store`] on container failure.
    pub fn checkpoint(&mut self) -> Result<bool, RecoverError> {
        if self.cursor < self.prefix.len() {
            return Ok(false);
        }
        let body = SnapshotBody {
            schema: STATE_SCHEMA_VERSION,
            records: prune_models(&self.mirror),
        };
        let wrote = self.store.snapshot_record(&body)?;
        if wrote {
            self.snapshots += 1;
        }
        Ok(wrote)
    }

    /// Take the warm-start bank harvested from a clean prior run:
    /// `(apki bits, predictor state)` pairs, oldest first. Empty unless
    /// the session resumed from a log ending in
    /// [`StateRecord::RunCompleted`].
    pub fn take_warm_bank(&mut self) -> Vec<(u64, PredictorState)> {
        std::mem::take(&mut self.warm)
    }

    /// Whether a warm-start bank is (still) loaded.
    #[must_use]
    pub fn warm_available(&self) -> bool {
        !self.warm.is_empty()
    }

    /// Records recovered from disk when the session opened.
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// The torn tail the container dropped at open, if any.
    #[must_use]
    pub fn torn(&self) -> Option<TornTail> {
        self.torn
    }

    /// Records appended (durably) this session.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.store.appended()
    }

    /// Snapshots written this session.
    #[must_use]
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Whether an injected crash point has killed the store.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.store.crashed()
    }

    /// Prefix records not yet re-verified by re-execution.
    #[must_use]
    pub fn unverified(&self) -> usize {
        self.prefix.len() - self.cursor
    }
}

/// Check that a log's `run_started` record identifies the same run the
/// resuming controller is about to execute.
fn check_run_identity(persisted: &StateRecord, expected: &StateRecord) -> Result<(), RecoverError> {
    let StateRecord::RunStarted { schema: found, .. } = persisted else {
        return Err(RecoverError::NotARun);
    };
    if *found != STATE_SCHEMA_VERSION {
        return Err(RecoverError::SchemaVersion {
            found: *found,
            supported: STATE_SCHEMA_VERSION,
        });
    }
    if persisted != expected {
        return Err(RecoverError::ConfigMismatch {
            expected: format!("{expected:?}"),
            found: format!("{persisted:?}"),
        });
    }
    Ok(())
}

/// Offline summary of a store directory, for `mct recover`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Container generation (snapshots taken).
    pub generation: u64,
    /// Typed records recovered (snapshot body + WAL).
    pub records: usize,
    /// WAL records discarded as stale (compaction-window crash).
    pub stale_wal_records: u64,
    /// Torn tail dropped from the WAL, if any.
    pub torn: Option<TornTail>,
    /// Whether the log ends in [`StateRecord::RunCompleted`]
    /// (warm-start eligible).
    pub clean: bool,
    /// Run seed, if a `run_started` record was recovered.
    pub seed: Option<u64>,
    /// Predictor family of the run.
    pub model: Option<ModelKind>,
    /// Instruction budget of the run.
    pub total_insts: Option<u64>,
    /// Latest measured-instruction clock seen in the log.
    pub executed: u64,
    /// Segments completed.
    pub segments_completed: u64,
    /// Fit records (fresh + elided).
    pub fits: u64,
    /// Elided fit records.
    pub elided_fits: u64,
    /// Fresh fits whose model payload survives in the log.
    pub restorable_models: u64,
    /// Health checks recorded.
    pub health_checks: u64,
    /// Failed health checks recorded.
    pub health_failures: u64,
    /// Final degradation-ladder rung implied by the log.
    pub ladder: DegradationStage,
    /// Most recent chosen configuration.
    pub last_chosen: Option<NvmConfig>,
}

impl RecoveryReport {
    /// Replay a store directory read-only and summarize it.
    ///
    /// # Errors
    /// Any [`RecoverError`] from the container or the typed decode.
    pub fn from_dir(dir: &Path) -> Result<RecoveryReport, RecoverError> {
        let replay = StateStore::replay_dir(dir)?;
        let records = decode_replay(&replay)?;
        let mut report = RecoveryReport {
            generation: replay.generation,
            records: records.len(),
            stale_wal_records: replay.stale_wal_records,
            torn: replay.torn,
            clean: matches!(records.last(), Some(StateRecord::RunCompleted { .. })),
            seed: None,
            model: None,
            total_insts: None,
            executed: 0,
            segments_completed: 0,
            fits: 0,
            elided_fits: 0,
            restorable_models: 0,
            health_checks: 0,
            health_failures: 0,
            ladder: DegradationStage::Normal,
            last_chosen: None,
        };
        for rec in &records {
            match rec {
                StateRecord::RunStarted {
                    seed,
                    model,
                    total_insts,
                    ..
                } => {
                    report.seed = Some(*seed);
                    report.model = Some(*model);
                    report.total_insts = Some(*total_insts);
                }
                StateRecord::SegmentStarted { executed, .. } => {
                    report.executed = report.executed.max(*executed);
                }
                StateRecord::FitCompleted { elided, model, .. } => {
                    report.fits += 1;
                    if *elided {
                        report.elided_fits += 1;
                    }
                    if model.is_some() {
                        report.restorable_models += 1;
                    }
                }
                StateRecord::DecisionMade { config, .. } => {
                    report.last_chosen = Some(*config);
                }
                StateRecord::HealthChecked { passed, .. } => {
                    report.health_checks += 1;
                    if !passed {
                        report.health_failures += 1;
                    }
                }
                StateRecord::LadderMoved { to, .. } => report.ladder = *to,
                StateRecord::SegmentCompleted {
                    segment, chosen, ..
                } => {
                    report.segments_completed = report.segments_completed.max(segment + 1);
                    report.last_chosen = Some(*chosen);
                }
                StateRecord::RunCompleted {
                    executed, chosen, ..
                } => {
                    report.executed = report.executed.max(*executed);
                    report.last_chosen = Some(*chosen);
                }
                StateRecord::BaselineMeasured { .. } | StateRecord::WearDelta { .. } => {}
            }
        }
        Ok(report)
    }

    /// Multi-line human rendering for the `mct recover` subcommand.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "state store: generation {}, {} records recovered\n",
            self.generation, self.records
        ));
        if let Some(t) = self.torn {
            out.push_str(&format!(
                "  torn tail dropped: {} bytes at offset {} (record never acknowledged)\n",
                t.dropped_bytes, t.offset
            ));
        }
        if self.stale_wal_records > 0 {
            out.push_str(&format!(
                "  stale WAL records discarded: {} (compaction-window crash; \
                 already inside the snapshot)\n",
                self.stale_wal_records
            ));
        }
        match (self.seed, self.model, self.total_insts) {
            (Some(seed), Some(model), Some(total)) => out.push_str(&format!(
                "run: seed {seed}, model {}, budget {total} insts\n",
                model.short_label()
            )),
            _ => out.push_str("run: no run_started record (empty or torn-at-birth log)\n"),
        }
        out.push_str(&format!(
            "progress: {} segments completed, {} insts executed\n",
            self.segments_completed, self.executed
        ));
        out.push_str(&format!(
            "fits: {} total ({} elided), {} restorable model payloads\n",
            self.fits, self.elided_fits, self.restorable_models
        ));
        out.push_str(&format!(
            "health: {} checks, {} failed, ladder at {}\n",
            self.health_checks,
            self.health_failures,
            self.ladder.label()
        ));
        if let Some(c) = &self.last_chosen {
            out.push_str(&format!("last chosen config: {c}\n"));
        }
        out.push_str(if self.clean {
            "status: clean completion — `mct run --resume` will warm-start\n"
        } else {
            "status: interrupted — `mct run --resume` will verify-replay and continue\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_persist::TempDir;

    fn run_started() -> StateRecord {
        StateRecord::RunStarted {
            schema: STATE_SCHEMA_VERSION,
            seed: 17,
            model: ModelKind::QuadraticLasso,
            total_insts: 1_000,
            config_digest: 42,
        }
    }

    fn fit(segment: u64, with_model: bool) -> StateRecord {
        StateRecord::FitCompleted {
            segment,
            elided: false,
            apki: 7.5f64.to_bits(),
            signature: 99,
            model: with_model.then(|| PredictorState {
                kind: ModelKind::QuadraticLasso,
                baseline: None,
                models: Vec::new(),
            }),
        }
    }

    #[test]
    fn fresh_session_appends_and_checkpoints() {
        let dir = TempDir::new("core-persist-fresh");
        let cfg = PersistConfig::fresh(dir.path().display().to_string());
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("begin");
        s.emit(StateRecord::SegmentStarted {
            segment: 0,
            executed: 0,
        })
        .expect("emit");
        assert!(s.checkpoint().expect("checkpoint"));
        assert_eq!(s.snapshots(), 1);
        assert_eq!(s.appends(), 2);
    }

    #[test]
    fn resume_verifies_prefix_and_rejects_divergence() {
        let dir = TempDir::new("core-persist-diverge");
        let path = dir.path().display().to_string();
        let cfg = PersistConfig::fresh(path.clone());
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("begin");
        s.emit(StateRecord::SegmentStarted {
            segment: 0,
            executed: 0,
        })
        .expect("emit");
        drop(s);

        let cfg = PersistConfig::resume_from(path);
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("resume");
        assert_eq!(s.replayed(), 2);
        assert_eq!(s.unverified(), 1, "run_started already verified");
        // A diverging record must fail loudly.
        let err = s
            .emit(StateRecord::SegmentStarted {
                segment: 0,
                executed: 999,
            })
            .expect_err("divergence");
        assert!(matches!(err, RecoverError::Diverged { index: 1, .. }));
    }

    #[test]
    fn resume_rejects_different_run_config() {
        let dir = TempDir::new("core-persist-mismatch");
        let path = dir.path().display().to_string();
        let cfg = PersistConfig::fresh(path.clone());
        drop(PersistSession::begin(&cfg, &run_started()).expect("begin"));

        let other = StateRecord::RunStarted {
            schema: STATE_SCHEMA_VERSION,
            seed: 18,
            model: ModelKind::QuadraticLasso,
            total_insts: 1_000,
            config_digest: 42,
        };
        let cfg = PersistConfig::resume_from(path);
        let err = PersistSession::begin(&cfg, &other).expect_err("mismatch");
        assert!(matches!(err, RecoverError::ConfigMismatch { .. }));
    }

    #[test]
    fn warm_bank_harvested_only_from_clean_logs() {
        let dir = TempDir::new("core-persist-warm");
        let path = dir.path().display().to_string();
        let cfg = PersistConfig::fresh(path.clone());
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("begin");
        s.emit(fit(0, true)).expect("emit");
        drop(s);

        // Interrupted log: no warm bank, prefix instead.
        let cfg = PersistConfig::resume_from(path.clone());
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("resume");
        assert!(!s.warm_available());
        assert_eq!(s.unverified(), 1);
        s.emit(fit(0, true)).expect("verify fit");
        s.emit(StateRecord::RunCompleted {
            executed: 1_000,
            chosen: NvmConfig::default_config(),
            segments: 1,
            final_metrics: Metrics {
                ipc: 1.0,
                lifetime_years: 8.0,
                energy_j: 1.0,
            }
            .into(),
        })
        .expect("complete");
        drop(s);

        // Clean log: warm bank available, fresh log started.
        let cfg = PersistConfig::resume_from(path);
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("warm resume");
        assert!(s.warm_available());
        let bank = s.take_warm_bank();
        assert_eq!(bank.len(), 1);
        assert_eq!(bank[0].0, 7.5f64.to_bits());
        assert_eq!(s.unverified(), 0, "warm start begins a fresh log");
    }

    #[test]
    fn warm_harvest_invalidated_by_ladder_refit() {
        let records = vec![
            run_started(),
            fit(0, true),
            StateRecord::LadderMoved {
                segment: 1,
                from: DegradationStage::Resample,
                to: DegradationStage::Refit,
                failures: 2,
            },
            fit(2, true),
        ];
        let bank = harvest_warm(&records);
        assert_eq!(bank.len(), 1, "only the post-refit fit survives");
    }

    #[test]
    fn prune_keeps_only_newest_model_payloads() {
        let records: Vec<StateRecord> = (0..SNAPSHOT_MODEL_SLOTS as u64 + 3)
            .map(|i| fit(i, true))
            .collect();
        let pruned = prune_models(&records);
        let with_model = pruned
            .iter()
            .filter(|r| matches!(r, StateRecord::FitCompleted { model: Some(_), .. }))
            .count();
        assert_eq!(with_model, SNAPSHOT_MODEL_SLOTS);
        // The survivors are the newest ones.
        assert!(matches!(
            pruned.last(),
            Some(StateRecord::FitCompleted { model: Some(_), .. })
        ));
        assert!(matches!(
            pruned.first(),
            Some(StateRecord::FitCompleted { model: None, .. })
        ));
    }

    #[test]
    fn records_match_tolerates_pruned_models_only() {
        let full = fit(3, true);
        let pruned = fit(3, false);
        let other = fit(4, true);
        assert!(
            records_match(&pruned, &full),
            "pruned persisted vs full emitted"
        );
        assert!(records_match(&full, &full));
        assert!(
            !records_match(&full, &pruned),
            "a persisted model must not vanish on re-execution"
        );
        assert!(!records_match(&pruned, &other));
    }

    #[test]
    fn bit_metrics_round_trip_infinity() {
        let m = Metrics {
            ipc: 1.25,
            lifetime_years: f64::INFINITY,
            energy_j: 3.5e-7,
        };
        let bits = BitMetrics::from(m);
        let back = bits.to_metrics();
        assert_eq!(m.ipc.to_bits(), back.ipc.to_bits());
        assert!(back.lifetime_years.is_infinite());
        assert_eq!(m.energy_j.to_bits(), back.energy_j.to_bits());
    }

    #[test]
    fn recovery_report_summarizes_a_store() {
        let dir = TempDir::new("core-persist-report");
        let cfg = PersistConfig::fresh(dir.path().display().to_string());
        let mut s = PersistSession::begin(&cfg, &run_started()).expect("begin");
        s.emit(fit(0, true)).expect("emit");
        s.emit(StateRecord::HealthChecked {
            segment: 0,
            check: 1,
            passed: false,
            testing_ipc: 1.0f64.to_bits(),
            baseline_ipc: 1.2f64.to_bits(),
        })
        .expect("emit");
        s.emit(StateRecord::LadderMoved {
            segment: 0,
            from: DegradationStage::Normal,
            to: DegradationStage::Resample,
            failures: 1,
        })
        .expect("emit");
        drop(s);
        let report = RecoveryReport::from_dir(dir.path()).expect("report");
        assert_eq!(report.records, 4);
        assert_eq!(report.seed, Some(17));
        assert_eq!(report.fits, 1);
        assert_eq!(report.restorable_models, 1);
        assert_eq!(report.health_checks, 1);
        assert_eq!(report.health_failures, 1);
        assert_eq!(report.ladder, DegradationStage::Resample);
        assert!(!report.clean);
        let text = report.render();
        assert!(text.contains("interrupted"));
        assert!(text.contains("seed 17"));
    }

    #[test]
    fn config_digest_ignores_persist_block() {
        let mut a = ControllerConfig::quick_demo();
        let mut b = ControllerConfig::quick_demo();
        b.persist = Some(PersistConfig::fresh("/tmp/x"));
        assert_eq!(config_digest(&a), config_digest(&b));
        a.seed = 99;
        assert_ne!(config_digest(&a), config_digest(&b));
    }
}
