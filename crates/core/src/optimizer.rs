//! Constrained selection over predicted metrics, with the wear-quota
//! fixup (paper Section 5.3).

use serde::{Deserialize, Serialize};

use mct_sim::stats::Metrics;

use crate::config::NvmConfig;
use crate::objective::Objective;
use crate::space::ConfigSpace;

/// The outcome of one optimization pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// The selected configuration, after any wear-quota fixup.
    pub config: NvmConfig,
    /// The selected configuration before the fixup.
    pub config_before_fixup: NvmConfig,
    /// Predicted metrics of the selection.
    pub predicted: Metrics,
    /// Whether the selection fell back (no feasible prediction).
    pub fell_back: bool,
}

impl OptimizationResult {
    /// Whether the wear-quota fixup actually rewrote the selection.
    #[must_use]
    pub fn fixup_changed(&self) -> bool {
        self.config != self.config_before_fixup
    }
}

/// Select the objective-optimal configuration from per-configuration
/// predictions.
///
/// * `space` and `predictions` must be parallel (as produced by
///   [`crate::predictor::MetricsPredictor::predict_all`]).
/// * When no configuration satisfies the constraints, falls back to
///   `fallback` (the static baseline in the full controller) — the paper's
///   guarantee that MCT never does worse than the baseline by
///   construction.
/// * When `quota_fixup` is true and the objective carries a lifetime
///   floor, the chosen configuration gets wear quota at that target —
///   "the last resort to ensure lifetime goals are met despite inaccurate
///   predictions".
///
/// # Panics
/// Panics if `space` and `predictions` lengths differ.
#[must_use]
pub fn optimize(
    space: &ConfigSpace,
    predictions: &[Metrics],
    objective: &Objective,
    fallback: NvmConfig,
    quota_fixup: bool,
) -> OptimizationResult {
    assert_eq!(
        space.len(),
        predictions.len(),
        "predictions must cover the space"
    );
    let (config_before_fixup, predicted, fell_back) = match objective.select(predictions) {
        Some(i) => (space.configs()[i], predictions[i], false),
        None => (
            fallback,
            Metrics {
                ipc: 0.0,
                lifetime_years: 0.0,
                energy_j: 0.0,
            },
            true,
        ),
    };
    let config = match (quota_fixup, objective.lifetime_floor()) {
        (true, Some(target)) => config_before_fixup.with_wear_quota(target),
        _ => config_before_fixup,
    };
    OptimizationResult {
        config,
        config_before_fixup,
        predicted,
        fell_back,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;

    fn fake_predictions(space: &ConfigSpace) -> Vec<Metrics> {
        space
            .iter()
            .map(|c| Metrics {
                ipc: 1.5 - 0.2 * c.fast_latency - 0.05 * c.slow_latency,
                lifetime_years: 2.0 * c.slow_latency * c.slow_latency,
                energy_j: 4.0 + c.fast_latency,
            })
            .collect()
    }

    #[test]
    fn picks_feasible_optimum_and_applies_fixup() {
        let space = ConfigSpace::without_wear_quota();
        let preds = fake_predictions(&space);
        let obj = Objective::paper_default(8.0);
        let res = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), true);
        assert!(!res.fell_back);
        assert!(res.fixup_changed());
        // Fixup: wear quota at the 8-year floor.
        assert!(res.config.wear_quota);
        assert_eq!(res.config.wear_quota_target, 8.0);
        assert!(!res.config_before_fixup.wear_quota);
        // The prediction for the selection satisfies the floor.
        assert!(res.predicted.lifetime_years >= 8.0);
    }

    #[test]
    fn no_fixup_when_disabled() {
        let space = ConfigSpace::without_wear_quota();
        let preds = fake_predictions(&space);
        let obj = Objective::paper_default(8.0);
        let res = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), false);
        assert!(!res.config.wear_quota);
    }

    #[test]
    fn falls_back_when_infeasible() {
        let space = ConfigSpace::without_wear_quota();
        let preds = fake_predictions(&space);
        // Impossible lifetime floor.
        let obj = Objective::paper_default(1e9);
        let res = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), true);
        assert!(res.fell_back);
        // Fallback keeps the baseline, with quota at the floor.
        assert_eq!(
            res.config.without_wear_quota(),
            NvmConfig::static_baseline().without_wear_quota()
        );
    }

    #[test]
    fn nan_predictions_do_not_panic_selection() {
        // A mispredicting model can emit NaN for any metric. Selection
        // must stay total (total_cmp, not partial_cmp().unwrap()) and
        // deterministic: NaN-primary candidates fail the slack filter,
        // NaN-tiebreak candidates order reproducibly.
        let space = ConfigSpace::without_wear_quota();
        let mut preds = fake_predictions(&space);
        for (i, p) in preds.iter_mut().enumerate() {
            if i % 3 == 0 {
                p.energy_j = f64::NAN;
            }
            if i % 7 == 0 {
                p.ipc = f64::NAN;
            }
        }
        let obj = Objective::paper_default(8.0);
        let first = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), true);
        let again = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), true);
        assert_eq!(first.config, again.config);
        assert_eq!(
            first.predicted.energy_j.to_bits(),
            again.predicted.energy_j.to_bits()
        );
    }

    #[test]
    fn all_nan_predictions_fall_back_to_baseline() {
        let space = ConfigSpace::without_wear_quota();
        let preds = vec![
            Metrics {
                ipc: f64::NAN,
                lifetime_years: f64::NAN,
                energy_j: f64::NAN,
            };
            space.len()
        ];
        let obj = Objective::paper_default(8.0);
        let res = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), true);
        assert!(res.fell_back, "NaN-infeasible predictions must fall back");
        assert_eq!(
            res.config.without_wear_quota(),
            NvmConfig::static_baseline().without_wear_quota()
        );
    }

    #[test]
    fn no_lifetime_floor_means_no_fixup() {
        let space = ConfigSpace::without_wear_quota();
        let preds = fake_predictions(&space);
        let obj = Objective::embedded(100.0);
        let res = optimize(&space, &preds, &obj, NvmConfig::static_baseline(), true);
        assert!(!res.config.wear_quota);
    }
}
