//! Graceful-degradation ladder for the testing-period health checker.
//!
//! The paper's health check (Section 5.4) is binary: if the chosen
//! configuration underperforms the baseline, revert to the static-safe
//! configuration for the rest of the phase. Under injected faults
//! ([`mct_sim::FaultPlan`]) that is too blunt — a latency-drift window or
//! a burst of measurement noise can make a *good* choice look bad for a
//! few checks, and an immediate revert forfeits the learned configuration
//! for the whole phase.
//!
//! The ladder escalates through three increasingly drastic remedies, one
//! rung per failed health check:
//!
//! 1. **Re-sample** — abandon the testing period and restart the segment
//!    (baseline + cyclic sampling) so the model sees the degraded regime;
//! 2. **Refit** — keep testing but fold the observed testing metrics into
//!    the sample set, refit the predictor, and re-optimize in place;
//! 3. **Revert-to-static** — the paper's fallback: pin the static-safe
//!    baseline for the rest of the run segment.
//!
//! Escalation is monotone within a run: the ladder never walks back to an
//! earlier rung, so a controller that reverted stays reverted (the same
//! stickiness the paper's fallback has). Passing checks simply leave the
//! ladder where it is. Every escalation is reported so the controller can
//! emit a `degradation_transition` telemetry event and `mct report` can
//! render the timeline.

use serde::{Deserialize, Serialize};

/// Where the controller currently sits on the degradation ladder.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DegradationStage {
    /// No sustained health failure observed; the learned choice stands.
    #[default]
    Normal,
    /// First failure: the segment was restarted to re-sample the regime.
    Resample,
    /// Second failure: the predictor was refit with testing observations.
    Refit,
    /// Third failure: pinned to the static-safe baseline (paper fallback).
    RevertToStatic,
}

impl DegradationStage {
    /// Stable lower-case label used in telemetry events and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DegradationStage::Normal => "normal",
            DegradationStage::Resample => "resample",
            DegradationStage::Refit => "refit",
            DegradationStage::RevertToStatic => "revert-to-static",
        }
    }

    fn next(self) -> DegradationStage {
        match self {
            DegradationStage::Normal => DegradationStage::Resample,
            DegradationStage::Resample => DegradationStage::Refit,
            DegradationStage::Refit | DegradationStage::RevertToStatic => {
                DegradationStage::RevertToStatic
            }
        }
    }
}

/// The remedy the controller must apply after a failed health check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationAction {
    /// Check passed (or the ladder is already at the bottom): keep going.
    None,
    /// Break out of the testing period and restart the segment.
    Resample,
    /// Fold testing observations into the sample set and re-optimize.
    Refit,
    /// Pin the static-safe baseline for the rest of the segment.
    RevertToStatic,
}

/// One escalation step, reported so the controller can emit telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationTransition {
    /// Stage before the failed check.
    pub from: DegradationStage,
    /// Stage after the failed check.
    pub to: DegradationStage,
    /// Total failed health checks observed by the ladder so far.
    pub failures: u64,
}

/// Monotone escalation state machine driven by health-check verdicts.
///
/// Lives across segments within one controller run: faults persist across
/// phase boundaries, so a regime bad enough to trigger a re-sample should
/// escalate — not restart from rung one — if the re-sampled model still
/// underperforms.
#[derive(Debug, Clone, Default)]
pub struct DegradationLadder {
    stage: DegradationStage,
    failures: u64,
}

/// Lifetime-floor pressure margin: a testing-period lifetime reading below
/// `floor * FLOOR_PRESSURE_MARGIN` counts as a failed health check even if
/// IPC looks fine, because the Wear Quota fixup is sized for the predicted
/// wear rate and a faulted regime can exceed it.
pub const FLOOR_PRESSURE_MARGIN: f64 = 0.5;

impl DegradationLadder {
    /// A fresh ladder at [`DegradationStage::Normal`].
    #[must_use]
    pub fn new() -> DegradationLadder {
        DegradationLadder::default()
    }

    /// Current rung.
    #[must_use]
    pub fn stage(&self) -> DegradationStage {
        self.stage
    }

    /// Total failed health checks observed.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Whether the ladder has bottomed out at the static-safe baseline.
    #[must_use]
    pub fn reverted(&self) -> bool {
        self.stage == DegradationStage::RevertToStatic
    }

    /// Feed one health-check verdict. A failed check escalates one rung
    /// and returns the transition plus the remedy to apply; a passed
    /// check (or a failure when already reverted) returns no transition.
    pub fn observe(&mut self, failed: bool) -> (DegradationAction, Option<DegradationTransition>) {
        if !failed {
            return (DegradationAction::None, None);
        }
        self.failures += 1;
        let from = self.stage;
        let to = from.next();
        self.stage = to;
        let action = match to {
            DegradationStage::Normal => DegradationAction::None,
            DegradationStage::Resample => DegradationAction::Resample,
            DegradationStage::Refit => DegradationAction::Refit,
            DegradationStage::RevertToStatic => DegradationAction::RevertToStatic,
        };
        let transition = (from != to).then_some(DegradationTransition {
            from,
            to,
            failures: self.failures,
        });
        (action, transition)
    }

    /// Whether a health reading fails: sustained prediction error (testing
    /// IPC below 95% of the accumulated baseline reference, the paper's
    /// Section 5.4 criterion) or lifetime-floor pressure (a finite
    /// lifetime reading below [`FLOOR_PRESSURE_MARGIN`] of the floor).
    /// `checks` gates on at least two accumulated reference windows, as a
    /// single window is burst-biased.
    #[must_use]
    pub fn reading_failed(
        checks: u32,
        testing_ipc: f64,
        baseline_ipc: f64,
        testing_lifetime_years: f64,
        lifetime_floor: Option<f64>,
    ) -> bool {
        if checks < 2 {
            return false;
        }
        let ipc_bad = testing_ipc < baseline_ipc * 0.95;
        let floor_bad = lifetime_floor.is_some_and(|floor| {
            testing_lifetime_years.is_finite()
                && testing_lifetime_years < floor * FLOOR_PRESSURE_MARGIN
        });
        ipc_bad || floor_bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_one_rung_per_failure() {
        let mut ladder = DegradationLadder::new();
        assert_eq!(ladder.stage(), DegradationStage::Normal);

        let (action, tr) = ladder.observe(true);
        assert_eq!(action, DegradationAction::Resample);
        let tr = tr.expect("transition");
        assert_eq!(tr.from, DegradationStage::Normal);
        assert_eq!(tr.to, DegradationStage::Resample);
        assert_eq!(tr.failures, 1);

        let (action, tr) = ladder.observe(true);
        assert_eq!(action, DegradationAction::Refit);
        assert_eq!(tr.expect("transition").to, DegradationStage::Refit);

        let (action, tr) = ladder.observe(true);
        assert_eq!(action, DegradationAction::RevertToStatic);
        assert_eq!(tr.expect("transition").to, DegradationStage::RevertToStatic);
        assert!(ladder.reverted());
    }

    #[test]
    fn passing_checks_do_not_move_the_ladder() {
        let mut ladder = DegradationLadder::new();
        ladder.observe(true);
        let stage = ladder.stage();
        let (action, tr) = ladder.observe(false);
        assert_eq!(action, DegradationAction::None);
        assert!(tr.is_none());
        assert_eq!(ladder.stage(), stage);
    }

    #[test]
    fn bottom_rung_is_sticky_and_silent() {
        let mut ladder = DegradationLadder::new();
        for _ in 0..3 {
            ladder.observe(true);
        }
        let (action, tr) = ladder.observe(true);
        assert_eq!(action, DegradationAction::RevertToStatic);
        assert!(tr.is_none(), "no transition when already at the bottom");
        assert_eq!(ladder.failures(), 4);
    }

    #[test]
    fn reading_failed_matches_paper_ipc_criterion() {
        // Fewer than two reference windows: never fail.
        assert!(!DegradationLadder::reading_failed(
            1,
            0.1,
            1.0,
            8.0,
            Some(8.0)
        ));
        // IPC below 95% of baseline fails.
        assert!(DegradationLadder::reading_failed(
            2,
            0.94,
            1.0,
            8.0,
            Some(8.0)
        ));
        assert!(!DegradationLadder::reading_failed(
            2,
            0.96,
            1.0,
            8.0,
            Some(8.0)
        ));
    }

    #[test]
    fn reading_failed_detects_floor_pressure() {
        // Lifetime below half the floor fails even with healthy IPC.
        assert!(DegradationLadder::reading_failed(
            2,
            1.0,
            1.0,
            3.9,
            Some(8.0)
        ));
        // Infinite lifetime (no wear observed yet) never fails the floor.
        assert!(!DegradationLadder::reading_failed(
            2,
            1.0,
            1.0,
            f64::INFINITY,
            Some(8.0)
        ));
        // No floor objective: only the IPC criterion applies.
        assert!(!DegradationLadder::reading_failed(2, 1.0, 1.0, 0.1, None));
    }
}
