//! The 10-dimensional NVM configuration vector (paper Section 4.1.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use mct_sim::policy::{CancellationMode, MellowPolicy};

use crate::error::MctError;

/// One point in the MCT configuration space.
///
/// Mirrors the paper's vector layout:
/// `[bank_aware, bank_aware_threshold, eager_writebacks, eager_threshold,
/// wear_quota, wear_quota_target, fast_latency, slow_latency,
/// fast_cancellation, slow_cancellation]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Bank-aware mellow writes enabled.
    pub bank_aware: bool,
    /// Bank-aware aggressiveness (1..=4, meaningful when `bank_aware`).
    pub bank_aware_threshold: u32,
    /// Eager mellow writebacks enabled.
    pub eager_writebacks: bool,
    /// Eager aggressiveness (4..=32, meaningful when `eager_writebacks`).
    pub eager_threshold: u32,
    /// Wear quota enabled.
    pub wear_quota: bool,
    /// Wear-quota lifetime target in years (meaningful when `wear_quota`).
    pub wear_quota_target: f64,
    /// Normalized fast-write pulse width, `[1.0, 4.0]`.
    pub fast_latency: f64,
    /// Normalized slow-write pulse width, `>= fast_latency`.
    pub slow_latency: f64,
    /// Write cancellation on fast writes.
    pub fast_cancellation: bool,
    /// Write cancellation on slow writes (forced true when
    /// `fast_cancellation` is true — Section 3.3.1).
    pub slow_cancellation: bool,
}

impl NvmConfig {
    /// The paper's *default* configuration (Table 5 row "default"):
    /// plain fast writes, no techniques.
    #[must_use]
    pub fn default_config() -> NvmConfig {
        NvmConfig {
            bank_aware: false,
            bank_aware_threshold: 0,
            eager_writebacks: false,
            eager_threshold: 0,
            wear_quota: false,
            wear_quota_target: 0.0,
            fast_latency: 1.0,
            slow_latency: 1.0,
            fast_cancellation: false,
            slow_cancellation: false,
        }
    }

    /// The paper's *best static policy* (Table 5 row "baseline").
    #[must_use]
    pub fn static_baseline() -> NvmConfig {
        NvmConfig {
            bank_aware: true,
            bank_aware_threshold: 1,
            eager_writebacks: true,
            eager_threshold: 32,
            wear_quota: true,
            wear_quota_target: 8.0,
            fast_latency: 1.0,
            slow_latency: 3.0,
            fast_cancellation: false,
            slow_cancellation: true,
        }
    }

    /// Validate the structural constraints of Section 3.3.1.
    ///
    /// # Errors
    /// Returns [`MctError::InvalidConfig`] on violations.
    pub fn validate(&self) -> Result<(), MctError> {
        let fail = |m: &str| Err(MctError::InvalidConfig(m.to_string()));
        if !(1.0..=4.0).contains(&self.fast_latency) {
            return fail("fast_latency out of [1, 4]");
        }
        if !(1.0..=4.0).contains(&self.slow_latency) {
            return fail("slow_latency out of [1, 4]");
        }
        if self.slow_latency < self.fast_latency {
            return fail("slow_latency must be >= fast_latency");
        }
        if self.fast_cancellation && !self.slow_cancellation {
            return fail("fast_cancellation=true forces slow_cancellation=true");
        }
        if self.bank_aware && !(1..=4).contains(&self.bank_aware_threshold) {
            return fail("bank_aware_threshold out of [1, 4]");
        }
        if self.eager_writebacks && ![4, 8, 16, 32].contains(&self.eager_threshold) {
            return fail("eager_threshold must be one of {4, 8, 16, 32}");
        }
        if self.wear_quota && (self.wear_quota_target <= 0.0 || self.wear_quota_target.is_nan()) {
            return fail("wear_quota_target must be positive");
        }
        Ok(())
    }

    /// The 10-dimensional feature vector fed to the learning models
    /// (Section 4.1.1's layout). Disabled techniques contribute zeros.
    #[must_use]
    pub fn to_vector(&self) -> [f64; 10] {
        [
            f64::from(u8::from(self.bank_aware)),
            if self.bank_aware {
                f64::from(self.bank_aware_threshold)
            } else {
                0.0
            },
            f64::from(u8::from(self.eager_writebacks)),
            if self.eager_writebacks {
                f64::from(self.eager_threshold)
            } else {
                0.0
            },
            f64::from(u8::from(self.wear_quota)),
            if self.wear_quota {
                self.wear_quota_target
            } else {
                0.0
            },
            self.fast_latency,
            self.slow_latency,
            f64::from(u8::from(self.fast_cancellation)),
            f64::from(u8::from(self.slow_cancellation)),
        ]
    }

    /// The 5-dimensional manually-compressed feature vector of Section
    /// 4.4: `[bank_aware (0..=4), eager level (0..=4), fast_latency,
    /// slow_latency, cancellation (0..=2)]`.
    #[must_use]
    pub fn to_compressed_vector(&self) -> [f64; 5] {
        let bank = if self.bank_aware {
            f64::from(self.bank_aware_threshold)
        } else {
            0.0
        };
        // Eager thresholds {4, 8, 16, 32} map to levels {1, 2, 3, 4}.
        let eager = if self.eager_writebacks {
            match self.eager_threshold {
                4 => 1.0,
                8 => 2.0,
                16 => 3.0,
                _ => 4.0,
            }
        } else {
            0.0
        };
        let cancel = f64::from(u8::from(self.slow_cancellation))
            + f64::from(u8::from(self.fast_cancellation));
        [bank, eager, self.fast_latency, self.slow_latency, cancel]
    }

    /// Names of the 10 vector dimensions (for feature-importance reports).
    #[must_use]
    pub fn feature_names() -> [&'static str; 10] {
        [
            "bank_aware",
            "bank_aware_threshold",
            "eager_writebacks",
            "eager_threshold",
            "wear_quota",
            "wear_quota_target",
            "fast_latency",
            "slow_latency",
            "fast_cancellation",
            "slow_cancellation",
        ]
    }

    /// Names of the 5 compressed dimensions.
    #[must_use]
    pub fn compressed_feature_names() -> [&'static str; 5] {
        [
            "bank_aware",
            "eager_writebacks",
            "fast_latency",
            "slow_latency",
            "cancellation",
        ]
    }

    /// Lower to the simulator's policy representation.
    #[must_use]
    pub fn to_policy(&self) -> MellowPolicy {
        let cancellation = match (self.fast_cancellation, self.slow_cancellation) {
            (true, _) => CancellationMode::Both,
            (false, true) => CancellationMode::SlowOnly,
            (false, false) => CancellationMode::None,
        };
        MellowPolicy {
            fast_latency: self.fast_latency,
            slow_latency: self.slow_latency,
            cancellation,
            bank_aware_threshold: self.bank_aware.then_some(self.bank_aware_threshold),
            eager_threshold: self.eager_writebacks.then_some(self.eager_threshold),
            wear_quota_target_years: self.wear_quota.then_some(self.wear_quota_target),
            retention: None,
            turbo_read: None,
        }
    }

    /// This configuration with wear quota enforced at `years` (the fixup
    /// step of Section 5.3).
    #[must_use]
    pub fn with_wear_quota(mut self, years: f64) -> NvmConfig {
        self.wear_quota = true;
        self.wear_quota_target = years;
        self
    }

    /// This configuration with wear quota disabled.
    #[must_use]
    pub fn without_wear_quota(mut self) -> NvmConfig {
        self.wear_quota = false;
        self.wear_quota_target = 0.0;
        self
    }

    /// Whether any technique can issue slow writes.
    #[must_use]
    pub fn uses_slow_writes(&self) -> bool {
        self.bank_aware || self.eager_writebacks
    }
}

impl fmt::Display for NvmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lat {:.1}/{:.1}", self.fast_latency, self.slow_latency)?;
        if self.bank_aware {
            write!(f, " ba:{}", self.bank_aware_threshold)?;
        }
        if self.eager_writebacks {
            write!(f, " ew:{}", self.eager_threshold)?;
        }
        if self.wear_quota {
            write!(f, " wq:{:.0}y", self.wear_quota_target)?;
        }
        match (self.fast_cancellation, self.slow_cancellation) {
            (true, _) => write!(f, " wc:both")?,
            (false, true) => write!(f, " wc:slow")?,
            (false, false) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_configs_valid() {
        NvmConfig::default_config().validate().unwrap();
        NvmConfig::static_baseline().validate().unwrap();
    }

    #[test]
    fn vector_layout_matches_paper() {
        // Paper example: [1, 1, 1, 32, 0, 0, 1.5, 3.0, 0, 1] = bank-aware
        // threshold 1, eager 32, latencies 1.5/3.0, cancellation slow-only.
        let c = NvmConfig {
            bank_aware: true,
            bank_aware_threshold: 1,
            eager_writebacks: true,
            eager_threshold: 32,
            wear_quota: false,
            wear_quota_target: 0.0,
            fast_latency: 1.5,
            slow_latency: 3.0,
            fast_cancellation: false,
            slow_cancellation: true,
        };
        assert_eq!(
            c.to_vector(),
            [1.0, 1.0, 1.0, 32.0, 0.0, 0.0, 1.5, 3.0, 0.0, 1.0]
        );
    }

    #[test]
    fn compressed_vector_levels() {
        let c = NvmConfig::static_baseline();
        // bank=1, eager 32 -> level 4, 1.0, 3.0, cancellation slow-only -> 1.
        assert_eq!(c.to_compressed_vector(), [1.0, 4.0, 1.0, 3.0, 1.0]);
    }

    #[test]
    fn cancellation_constraint_enforced() {
        let c = NvmConfig {
            fast_cancellation: true,
            slow_cancellation: false,
            ..NvmConfig::default_config()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn policy_lowering() {
        let p = NvmConfig::static_baseline().to_policy();
        assert_eq!(p, MellowPolicy::static_baseline());
        let d = NvmConfig::default_config().to_policy();
        assert_eq!(d, MellowPolicy::default_fast());
    }

    #[test]
    fn quota_fixup_round_trip() {
        let c = NvmConfig::default_config().with_wear_quota(8.0);
        assert!(c.wear_quota);
        c.validate().unwrap();
        assert!(!c.without_wear_quota().wear_quota);
    }

    #[test]
    fn display_is_compact() {
        let s = NvmConfig::static_baseline().to_string();
        assert!(s.contains("ba:1") && s.contains("ew:32") && s.contains("wq:8y"));
        assert!(s.contains("wc:slow"));
    }

    #[test]
    fn invalid_thresholds_rejected() {
        let c = NvmConfig {
            bank_aware: true,
            bank_aware_threshold: 9,
            ..NvmConfig::default_config()
        };
        assert!(c.validate().is_err());
        let c = NvmConfig {
            eager_writebacks: true,
            eager_threshold: 5,
            ..NvmConfig::default_config()
        };
        assert!(c.validate().is_err());
    }
}
