//! Sample-configuration selection (paper Section 4.4).
//!
//! Random sampling draws uniformly from the learnable space.
//! Feature-based sampling stratifies over the three lasso-selected
//! primary features — `fast_latency`, `slow_latency`, `cancellation` —
//! taking one configuration per primary-feature combination (uniform over
//! the primary grid) with the remaining knobs chosen pseudo-randomly.
//! The paper obtains 77 samples this way; this enumeration yields a
//! comparable count (one per legal latency-pair × cancellation class).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::NvmConfig;
use crate::space::ConfigSpace;

/// Draw `n` distinct configurations uniformly at random.
///
/// # Panics
/// Panics if `n` is zero or exceeds the space size.
#[must_use]
pub fn random_samples(space: &ConfigSpace, n: usize, seed: u64) -> Vec<NvmConfig> {
    assert!(n > 0 && n <= space.len(), "need 0 < n <= space size");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..space.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n);
    idx.into_iter().map(|i| space.configs()[i]).collect()
}

/// The primary-feature class of a configuration:
/// `(fast_latency, slow_latency, cancellation mode)`, with latencies on
/// the half-step grid encoded as integers.
fn primary_class(c: &NvmConfig) -> (u32, u32, u8) {
    let enc = |l: f64| (l * 2.0).round() as u32;
    let cancel = match (c.fast_cancellation, c.slow_cancellation) {
        (true, _) => 2,
        (false, true) => 1,
        (false, false) => 0,
    };
    (enc(c.fast_latency), enc(c.slow_latency), cancel)
}

/// Feature-based sampling: one configuration per primary-feature class,
/// secondary knobs chosen pseudo-randomly within the class.
#[must_use]
pub fn feature_based_samples(space: &ConfigSpace, seed: u64) -> Vec<NvmConfig> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut classes: Vec<((u32, u32, u8), Vec<NvmConfig>)> = Vec::new();
    for c in space.iter() {
        let key = primary_class(c);
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(*c),
            None => classes.push((key, vec![*c])),
        }
    }
    classes
        .into_iter()
        // mct-tidy: allow(P003) -- every class is created with one member
        .map(|(_, members)| *members.choose(&mut rng).expect("nonempty class"))
        .collect()
}

/// Ensure `anchors` are present in `samples` (the controller always wants
/// the static baseline and default measured, for normalization and
/// comparison). Replaces pseudo-random picks rather than growing the set
/// when a class-mate exists; otherwise appends.
#[must_use]
pub fn with_anchors(mut samples: Vec<NvmConfig>, anchors: &[NvmConfig]) -> Vec<NvmConfig> {
    for anchor in anchors {
        if samples.iter().any(|c| c == anchor) {
            continue;
        }
        let key = primary_class(anchor);
        match samples.iter_mut().find(|c| primary_class(c) == key) {
            Some(slot) => *slot = *anchor,
            None => samples.push(*anchor),
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_samples_are_distinct_and_deterministic() {
        let space = ConfigSpace::without_wear_quota();
        let a = random_samples(&space, 50, 3);
        let b = random_samples(&space, 50, 3);
        assert_eq!(a, b);
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                assert_ne!(a[i], a[j]);
            }
        }
        let c = random_samples(&space, 50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn feature_based_covers_primary_grid() {
        let space = ConfigSpace::without_wear_quota();
        let samples = feature_based_samples(&space, 1);
        // 28 latency pairs x 3 cancellation classes for slow-write configs
        // + (7 latency singletons x 1 extra no-slow class)... every class
        // appears exactly once.
        let mut keys: Vec<_> = samples.iter().map(primary_class).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), samples.len(), "one sample per class");
        // The paper lands at 77 samples; we should be in that vicinity.
        assert!(
            (60..=100).contains(&samples.len()),
            "sample count {} should be near the paper's 77",
            samples.len()
        );
    }

    #[test]
    fn feature_based_spans_latency_extremes() {
        let space = ConfigSpace::without_wear_quota();
        let samples = feature_based_samples(&space, 2);
        assert!(samples.iter().any(|c| c.fast_latency == 1.0));
        assert!(samples.iter().any(|c| c.slow_latency == 4.0));
        assert!(samples.iter().any(|c| c.fast_cancellation));
        assert!(samples.iter().any(|c| !c.slow_cancellation));
    }

    #[test]
    fn anchors_injected_without_duplicates() {
        let space = ConfigSpace::without_wear_quota();
        let samples = feature_based_samples(&space, 5);
        let n = samples.len();
        let anchors = [
            NvmConfig::default_config(),
            NvmConfig::static_baseline().without_wear_quota(),
        ];
        let with = with_anchors(samples, &anchors);
        assert!(with.iter().any(|c| c == &anchors[0]));
        assert!(with.iter().any(|c| c == &anchors[1]));
        // Anchors replace class-mates: size grows by at most the anchor count.
        assert!(with.len() <= n + anchors.len());
    }

    #[test]
    #[should_panic(expected = "need 0 < n")]
    fn oversampling_panics() {
        let space = ConfigSpace::without_wear_quota();
        let _ = random_samples(&space, space.len() + 1, 0);
    }
}
