//! # mct-core — the Memory Cocktail Therapy framework
//!
//! The paper's contribution: a learning-based runtime that, per
//! application and per detected phase, picks a near-optimal combination of
//! NVM write-management techniques from a ~3,000-point configuration
//! space under a user-defined constrained objective.
//!
//! The pipeline (paper Sections 4–5):
//!
//! 1. [`space::ConfigSpace`] enumerates the 10-dimensional configuration
//!    space with the structural constraints of Section 3.3.1;
//! 2. [`phase::PhaseDetector`] watches memory-workload performance
//!    counters and flags dramatic phases via a Student's t-test;
//! 3. [`sampling`] chooses a small set of sample configurations —
//!    feature-guided (uniform over the three lasso-selected primary
//!    features) or random — and the controller exercises them with
//!    cyclic fine-grained sampling;
//! 4. [`predictor::MetricsPredictor`] fits lightweight models (quadratic
//!    lasso, gradient boosting, ...) to the samples and predicts
//!    IPC/lifetime/energy for every configuration;
//! 5. [`optimizer`] solves the user's constrained objective over the
//!    predictions and applies the wear-quota fixup;
//! 6. [`controller::Controller`] ties it together on a live simulated
//!    system, with baseline normalization, periodic health checks and
//!    baseline fallback.
//!
//! ```
//! use mct_core::{Controller, ControllerConfig, Objective};
//! use mct_workloads::Workload;
//!
//! let mut controller = Controller::new(
//!     ControllerConfig::quick_demo(),
//!     Objective::paper_default(8.0),
//! );
//! let outcome = controller.run(&mut Workload::Stream.source(7));
//! assert!(outcome.final_metrics.ipc > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod controller;
pub mod degrade;
pub mod error;
pub mod extensions;
pub mod objective;
pub mod optimizer;
pub mod persist;
pub mod phase;
pub mod predictor;
pub mod sampling;
pub mod space;

pub use config::NvmConfig;
pub use controller::{Controller, ControllerConfig, Outcome};
pub use degrade::{DegradationAction, DegradationLadder, DegradationStage};
pub use error::MctError;
pub use extensions::{extended_space, ExtendedNvmConfig};
pub use objective::{Constraint, Metric, Objective, OptimizeTarget};
pub use optimizer::{optimize, OptimizationResult};
pub use persist::{
    config_digest, decode_dir, records_match, PersistConfig, PredictorState, RecoverError,
    RecoveryReport, StateRecord, STATE_SCHEMA_VERSION,
};
pub use phase::{phase_signature, PhaseDetector, PhaseDetectorConfig};
pub use predictor::{MetricsPredictor, ModelKind};
pub use sampling::{feature_based_samples, random_samples};
pub use space::ConfigSpace;
