//! User-defined constrained objectives (paper Section 3.2).
//!
//! The paper's canonical objective: *subject to lifetime ≥ t, among
//! configurations whose IPC is within 95% of the maximum, minimize
//! energy.* The same machinery expresses the embedded (energy-capped) and
//! datacenter (performance-floored) variants by permuting which metric is
//! the constraint, the primary goal, and the tiebreak.

use serde::{Deserialize, Serialize};

use mct_sim::stats::Metrics;

use crate::error::MctError;

/// One of the three tradeoff metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Instructions per cycle (higher is better).
    Ipc,
    /// Memory lifetime in years (higher is better).
    Lifetime,
    /// System energy in joules (lower is better).
    Energy,
}

impl Metric {
    /// Extract this metric's value.
    #[must_use]
    pub fn of(self, m: &Metrics) -> f64 {
        match self {
            Metric::Ipc => m.ipc,
            Metric::Lifetime => m.lifetime_years,
            Metric::Energy => m.energy_j,
        }
    }

    /// Whether larger values are better.
    #[must_use]
    pub fn higher_is_better(self) -> bool {
        !matches!(self, Metric::Energy)
    }
}

/// A hard constraint over one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Constraint {
    /// Metric must be at least this value.
    AtLeast(Metric, f64),
    /// Metric must be at most this value.
    AtMost(Metric, f64),
}

impl Constraint {
    /// Whether `m` satisfies the constraint.
    #[must_use]
    pub fn satisfied_by(&self, m: &Metrics) -> bool {
        match *self {
            Constraint::AtLeast(metric, v) => metric.of(m) >= v,
            Constraint::AtMost(metric, v) => metric.of(m) <= v,
        }
    }
}

/// Direction of optimization over one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizeTarget {
    /// Maximize the metric.
    Maximize(Metric),
    /// Minimize the metric.
    Minimize(Metric),
}

impl OptimizeTarget {
    /// Score such that larger is always better.
    #[must_use]
    pub fn score(&self, m: &Metrics) -> f64 {
        match *self {
            OptimizeTarget::Maximize(metric) => metric.of(m),
            OptimizeTarget::Minimize(metric) => -metric.of(m),
        }
    }
}

/// A complete constrained objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Hard filters applied first.
    pub constraints: Vec<Constraint>,
    /// Primary goal among feasible configurations.
    pub primary: OptimizeTarget,
    /// Keep configurations scoring within `slack` of the primary best
    /// (e.g. 0.95 keeps IPC within 95% of max). `1.0` keeps only the best.
    pub slack: f64,
    /// Final selection among the slack set.
    pub tiebreak: OptimizeTarget,
}

impl Objective {
    /// The paper's default objective: lifetime ≥ `target_years`; IPC
    /// within 95% of max; minimize energy.
    #[must_use]
    pub fn paper_default(target_years: f64) -> Objective {
        Objective {
            constraints: vec![Constraint::AtLeast(Metric::Lifetime, target_years)],
            primary: OptimizeTarget::Maximize(Metric::Ipc),
            slack: 0.95,
            tiebreak: OptimizeTarget::Minimize(Metric::Energy),
        }
    }

    /// Embedded-system variant (Section 3.2): energy ≤ `budget_j`;
    /// maximize IPC within 95%; then maximize lifetime.
    #[must_use]
    pub fn embedded(budget_j: f64) -> Objective {
        Objective {
            constraints: vec![Constraint::AtMost(Metric::Energy, budget_j)],
            primary: OptimizeTarget::Maximize(Metric::Ipc),
            slack: 0.95,
            tiebreak: OptimizeTarget::Maximize(Metric::Lifetime),
        }
    }

    /// Datacenter variant (Section 3.2): IPC ≥ `ipc_floor`; maximize
    /// lifetime within 95%; then minimize energy.
    #[must_use]
    pub fn datacenter(ipc_floor: f64) -> Objective {
        Objective {
            constraints: vec![Constraint::AtLeast(Metric::Ipc, ipc_floor)],
            primary: OptimizeTarget::Maximize(Metric::Lifetime),
            slack: 0.95,
            tiebreak: OptimizeTarget::Minimize(Metric::Energy),
        }
    }

    /// Validate structural sanity.
    ///
    /// # Errors
    /// Returns [`MctError::InvalidObjective`] when `slack` is outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), MctError> {
        if !(self.slack > 0.0 && self.slack <= 1.0) {
            return Err(MctError::InvalidObjective(
                "slack must be in (0, 1]".to_string(),
            ));
        }
        Ok(())
    }

    /// The lifetime floor among the constraints, if any — drives the
    /// wear-quota fixup target.
    #[must_use]
    pub fn lifetime_floor(&self) -> Option<f64> {
        self.constraints.iter().find_map(|c| match *c {
            Constraint::AtLeast(Metric::Lifetime, v) => Some(v),
            _ => None,
        })
    }

    /// Select the optimal index among `candidates` per this objective.
    ///
    /// Returns `None` when no candidate satisfies the hard constraints.
    #[must_use]
    pub fn select(&self, candidates: &[Metrics]) -> Option<usize> {
        let feasible: Vec<usize> = (0..candidates.len())
            .filter(|&i| {
                self.constraints
                    .iter()
                    .all(|c| c.satisfied_by(&candidates[i]))
            })
            .collect();
        if feasible.is_empty() {
            return None;
        }
        let best_primary = feasible
            .iter()
            .map(|&i| self.primary.score(&candidates[i]))
            .fold(f64::NEG_INFINITY, f64::max);
        // The slack window: for positive scores, >= slack * best; for
        // negative (minimization) scores, within best / slack.
        let cutoff = if best_primary >= 0.0 {
            best_primary * self.slack
        } else {
            best_primary / self.slack
        };
        feasible
            .into_iter()
            .filter(|&i| self.primary.score(&candidates[i]) >= cutoff)
            .max_by(|&a, &b| {
                self.tiebreak
                    .score(&candidates[a])
                    .total_cmp(&self.tiebreak.score(&candidates[b]))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ipc: f64, life: f64, e: f64) -> Metrics {
        Metrics {
            ipc,
            lifetime_years: life,
            energy_j: e,
        }
    }

    #[test]
    fn paper_default_selects_low_energy_within_95pct() {
        let obj = Objective::paper_default(8.0);
        let candidates = vec![
            m(1.00, 9.0, 10.0), // best IPC, high energy
            m(0.97, 9.0, 7.0),  // within 95%, lowest energy -> winner
            m(0.90, 9.0, 5.0),  // below 95% of max
            m(1.10, 4.0, 1.0),  // violates lifetime
        ];
        assert_eq!(obj.select(&candidates), Some(1));
    }

    #[test]
    fn infeasible_returns_none() {
        let obj = Objective::paper_default(8.0);
        assert_eq!(obj.select(&[m(1.0, 3.0, 1.0)]), None);
    }

    #[test]
    fn embedded_variant_caps_energy() {
        let obj = Objective::embedded(5.0);
        let candidates = vec![
            m(1.2, 4.0, 9.0), // over budget
            m(1.0, 4.0, 5.0), // winner: feasible, top IPC
            m(0.6, 9.0, 4.0), // below 95% of IPC
        ];
        assert_eq!(obj.select(&candidates), Some(1));
    }

    #[test]
    fn datacenter_variant_floors_ipc_maximizes_lifetime() {
        let obj = Objective::datacenter(0.8);
        let candidates = vec![
            m(0.7, 20.0, 1.0), // IPC too low
            m(0.9, 10.0, 3.0), // feasible, max lifetime -> in window
            m(0.9, 9.8, 2.0),  // within 95% of lifetime, cheaper -> winner
        ];
        assert_eq!(obj.select(&candidates), Some(2));
    }

    #[test]
    fn slack_one_keeps_only_best_primary() {
        let mut obj = Objective::paper_default(0.0);
        obj.slack = 1.0;
        let candidates = vec![m(1.0, 9.0, 10.0), m(0.999, 9.0, 0.1)];
        assert_eq!(obj.select(&candidates), Some(0));
    }

    #[test]
    fn lifetime_floor_extraction() {
        assert_eq!(Objective::paper_default(6.5).lifetime_floor(), Some(6.5));
        assert_eq!(Objective::embedded(1.0).lifetime_floor(), None);
    }

    #[test]
    fn negative_score_slack_window() {
        // Minimizing energy as primary: scores are negative.
        let obj = Objective {
            constraints: vec![],
            primary: OptimizeTarget::Minimize(Metric::Energy),
            slack: 0.9,
            tiebreak: OptimizeTarget::Maximize(Metric::Ipc),
        };
        let candidates = vec![
            m(0.5, 1.0, 9.0),  // energy 9: best
            m(2.0, 1.0, 9.9),  // within 10% window, higher IPC -> winner
            m(9.0, 1.0, 20.0), // far outside window
        ];
        assert_eq!(obj.select(&candidates), Some(1));
    }

    #[test]
    fn validate_slack() {
        let mut obj = Objective::paper_default(8.0);
        obj.validate().unwrap();
        obj.slack = 0.0;
        assert!(obj.validate().is_err());
        obj.slack = 1.5;
        assert!(obj.validate().is_err());
    }

    #[test]
    fn metric_accessors() {
        let x = m(1.0, 2.0, 3.0);
        assert_eq!(Metric::Ipc.of(&x), 1.0);
        assert_eq!(Metric::Lifetime.of(&x), 2.0);
        assert_eq!(Metric::Energy.of(&x), 3.0);
        assert!(Metric::Ipc.higher_is_better());
        assert!(!Metric::Energy.higher_is_better());
    }
}
