//! Error types for the MCT framework.

use std::error::Error;
use std::fmt;

/// Errors produced by the MCT framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MctError {
    /// A configuration violated a structural constraint.
    InvalidConfig(String),
    /// An objective was structurally unsatisfiable or malformed.
    InvalidObjective(String),
    /// No configuration satisfied the hard constraints.
    Infeasible(String),
}

impl fmt::Display for MctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MctError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            MctError::InvalidObjective(m) => write!(f, "invalid objective: {m}"),
            MctError::Infeasible(m) => write!(f, "no feasible configuration: {m}"),
        }
    }
}

impl Error for MctError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MctError::Infeasible("lifetime >= 8".into())
            .to_string()
            .contains("no feasible configuration"));
    }

    #[test]
    fn error_is_send_sync() {
        fn bounds<T: Error + Send + Sync + 'static>() {}
        bounds::<MctError>();
    }
}
