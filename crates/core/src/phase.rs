//! Lightweight phase detection (paper Section 5.1).
//!
//! Performance counters report the memory workload (reads + writes) per
//! window of `I` instructions. A two-sided Student's t-test compares the
//! most recent `recent_windows` against the retained history of up to
//! `history_windows`; a t-score above `score_threshold` flags a dramatic
//! phase change, after which the history restarts. Minor fluctuations are
//! absorbed (the paper tolerates them through normalization and
//! fine-grained sampling).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Phase-detector parameters. Paper values: `I` = 1 M instructions,
/// history 1000·I, recent 100·I, threshold 15.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseDetectorConfig {
    /// Window length in instructions (`I`).
    pub window_insts: u64,
    /// History length in windows.
    pub history_windows: usize,
    /// Recent-set length in windows.
    pub recent_windows: usize,
    /// t-score above which a new phase is declared.
    pub score_threshold: f64,
}

impl Default for PhaseDetectorConfig {
    /// Paper parameters scaled to this reproduction's shorter runs:
    /// 100 k-instruction windows, 100-window history, 10-window recent
    /// set. The threshold is 25 rather than the paper's 15: our windows
    /// are 10x shorter than the paper's 1 M instructions, so per-window
    /// workload variance is higher and burst edges would otherwise read
    /// as phases (Section 5.1 wants those tolerated).
    fn default() -> PhaseDetectorConfig {
        PhaseDetectorConfig {
            window_insts: 100_000,
            history_windows: 100,
            recent_windows: 10,
            score_threshold: 25.0,
        }
    }
}

impl PhaseDetectorConfig {
    /// The paper's literal parameters (Figure 6): 1 M-instruction windows,
    /// 1000-window history, 100-window recent set, threshold 15.
    #[must_use]
    pub fn paper() -> PhaseDetectorConfig {
        PhaseDetectorConfig {
            window_insts: 1_000_000,
            history_windows: 1000,
            recent_windows: 100,
            score_threshold: 15.0,
        }
    }
}

/// The t-test phase detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDetector {
    cfg: PhaseDetectorConfig,
    history: VecDeque<f64>,
    phases_detected: u64,
    last_score: f64,
}

impl PhaseDetector {
    /// A fresh detector.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    #[must_use]
    pub fn new(cfg: PhaseDetectorConfig) -> PhaseDetector {
        assert!(cfg.window_insts > 0, "window must be nonzero");
        assert!(
            cfg.recent_windows >= 2 && cfg.history_windows > cfg.recent_windows,
            "history must exceed the recent set (>= 2)"
        );
        assert!(cfg.score_threshold > 0.0, "threshold must be positive");
        PhaseDetector {
            cfg,
            history: VecDeque::new(),
            phases_detected: 0,
            last_score: 0.0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &PhaseDetectorConfig {
        &self.cfg
    }

    /// Feed the memory-workload count for one window of `I` instructions.
    /// Returns `true` when a dramatic phase change is detected (history
    /// restarts automatically, per the paper's "clear off the counters
    /// and restart").
    pub fn observe(&mut self, workload: f64) -> bool {
        self.history.push_back(workload);
        while self.history.len() > self.cfg.history_windows {
            self.history.pop_front();
        }
        // Need a recent set plus at least as much older history.
        if self.history.len() < 2 * self.cfg.recent_windows {
            self.last_score = 0.0;
            return false;
        }
        let n = self.history.len();
        let recent: Vec<f64> = self
            .history
            .iter()
            .skip(n - self.cfg.recent_windows)
            .copied()
            .collect();
        let older: Vec<f64> = self
            .history
            .iter()
            .take(n - self.cfg.recent_windows)
            .copied()
            .collect();
        self.last_score = Self::t_score(&recent, &older);
        if self.last_score > self.cfg.score_threshold {
            self.phases_detected += 1;
            self.history.clear();
            return true;
        }
        false
    }

    /// Welch's two-sample t statistic (absolute value).
    fn t_score(a: &[f64], b: &[f64]) -> f64 {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let var = |v: &[f64], m: f64| {
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() as f64 - 1.0).max(1.0)
        };
        let (ma, mb) = (mean(a), mean(b));
        let (va, vb) = (var(a, ma), var(b, mb));
        let denom = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
        if denom < 1e-12 {
            // Identical variance-free windows: no evidence of change
            // unless the means differ, in which case the evidence is
            // overwhelming.
            return if (ma - mb).abs() < 1e-12 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (ma - mb).abs() / denom
    }

    /// Number of phases detected so far.
    #[must_use]
    pub fn phases_detected(&self) -> u64 {
        self.phases_detected
    }

    /// The most recent t-score (Figure 6's plotted signal).
    #[must_use]
    pub fn last_score(&self) -> f64 {
        self.last_score
    }

    /// Mean workload over the retained history (guides sampling-unit
    /// selection, Section 5.2).
    #[must_use]
    pub fn mean_workload(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().sum::<f64>() / self.history.len() as f64
    }

    /// Drop all history (e.g. after an external reconfiguration).
    pub fn reset(&mut self) {
        self.history.clear();
        self.last_score = 0.0;
    }
}

/// Coarse signature of a workload phase from its memory accesses per
/// kilo-instruction: the log₂ bucket index at ⅛-octave granularity
/// (~9% per bucket, well inside the fluctuation band the t-test
/// already tolerates). Two segments with equal signatures are "the
/// same phase" for refit-elision purposes — a deliberately blunt
/// instrument, because the cost of a false match is one skipped refit
/// on near-identical data, while the cost of a fine-grained signature
/// is refitting on noise. Non-positive workloads collapse to a `0`
/// sentinel bucket.
#[must_use]
pub fn phase_signature(workload_per_kinst: f64) -> u64 {
    if workload_per_kinst <= 0.0 || !workload_per_kinst.is_finite() {
        return 0;
    }
    // log2 * 8 → ⅛-octave buckets; offset keeps tiny workloads positive
    // and distinct from the sentinel.
    let bucket = (workload_per_kinst.log2() * 8.0).floor() as i64;
    (bucket + 1024) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> PhaseDetector {
        PhaseDetector::new(PhaseDetectorConfig {
            window_insts: 1000,
            history_windows: 100,
            recent_windows: 10,
            score_threshold: 15.0,
        })
    }

    #[test]
    fn stable_workload_no_phase() {
        let mut d = detector();
        for i in 0..200 {
            // Small oscillation around 100.
            let w = 100.0 + f64::from(i % 5);
            assert!(!d.observe(w), "stable stream must not trigger");
        }
        assert_eq!(d.phases_detected(), 0);
    }

    #[test]
    fn dramatic_shift_detected() {
        let mut d = detector();
        for i in 0..100 {
            d.observe(100.0 + f64::from(i % 3));
        }
        let mut hit = false;
        for i in 0..20 {
            if d.observe(1000.0 + f64::from(i % 3)) {
                hit = true;
                break;
            }
        }
        assert!(hit, "10x workload shift must be detected");
        assert_eq!(d.phases_detected(), 1);
    }

    #[test]
    fn history_restarts_after_detection() {
        let mut d = detector();
        for i in 0..100 {
            d.observe(100.0 + f64::from(i % 3));
        }
        for i in 0..30 {
            let _ = d.observe(1000.0 + f64::from(i % 3));
        }
        assert_eq!(d.phases_detected(), 1, "one detection, then re-learn");
        // Continue at the new level: no further detection.
        for i in 0..100 {
            assert!(!d.observe(1000.0 + f64::from(i % 3)));
        }
    }

    #[test]
    fn fine_grained_bursts_tolerated() {
        // Alternating 50/150 every window is fine-grained noise: both the
        // recent set and history see the same mixture.
        let mut d = detector();
        for i in 0..300 {
            let w = if i % 2 == 0 { 50.0 } else { 150.0 };
            assert!(!d.observe(w), "fine-grained alternation must be tolerated");
        }
    }

    #[test]
    fn needs_warm_history_before_scoring() {
        let mut d = detector();
        for _ in 0..19 {
            assert!(!d.observe(5.0));
            assert_eq!(d.last_score(), 0.0);
        }
    }

    #[test]
    fn mean_workload_tracks_history() {
        let mut d = detector();
        for _ in 0..50 {
            d.observe(80.0);
        }
        assert!((d.mean_workload() - 80.0).abs() < 1e-9);
        d.reset();
        assert_eq!(d.mean_workload(), 0.0);
    }

    #[test]
    fn constant_then_step_with_zero_variance() {
        // Zero-variance history followed by a different constant: the
        // t-score denominator degenerates; detection must still fire.
        let mut d = detector();
        for _ in 0..60 {
            d.observe(10.0);
        }
        let mut hit = false;
        for _ in 0..15 {
            if d.observe(99.0) {
                hit = true;
                break;
            }
        }
        assert!(hit);
    }

    #[test]
    fn phase_signature_buckets_similar_workloads_together() {
        // Within ~4% of each other: same bucket.
        assert_eq!(phase_signature(100.0), phase_signature(102.0));
        // A 2x shift always lands 8 buckets away.
        assert_eq!(phase_signature(200.0), phase_signature(100.0) + 8);
        // Degenerate inputs share the sentinel and never match real ones.
        assert_eq!(phase_signature(0.0), 0);
        assert_eq!(phase_signature(-3.0), 0);
        assert_eq!(phase_signature(f64::NAN), 0);
        assert_ne!(phase_signature(1e-9), 0);
    }

    #[test]
    #[should_panic(expected = "history must exceed")]
    fn bad_config_panics() {
        let _ = PhaseDetector::new(PhaseDetectorConfig {
            window_insts: 1000,
            history_windows: 5,
            recent_windows: 10,
            score_threshold: 15.0,
        });
    }
}
