//! Enumeration of the full configuration space.
//!
//! The paper's case-study space (Tables 2–3 with the constraints of
//! Section 3.3.1) contains 3,164 configurations; the authors do not
//! publish the exact grid, so this enumeration uses the published ranges
//! — latencies on a 0.5 grid in `[1, 4]` with `slow >= fast`, bank-aware
//! thresholds 1..=4, eager thresholds {4, 8, 16, 32}, the three legal
//! cancellation pairs, wear quota off/on — which lands within a few
//! percent of the paper's count (see [`ConfigSpace::len`]).

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use mct_ml::{quadratic_expand, Matrix};

use crate::config::NvmConfig;

/// Latency grid used for both fast and slow pulses.
pub const LATENCY_GRID: [f64; 7] = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];

/// Bank-aware threshold options (Table 3).
pub const BANK_AWARE_THRESHOLDS: [u32; 4] = [1, 2, 3, 4];

/// Eager threshold options (Table 3).
pub const EAGER_THRESHOLDS: [u32; 4] = [4, 8, 16, 32];

/// The enumerated configuration space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSpace {
    configs: Vec<NvmConfig>,
    includes_wear_quota: bool,
    /// Feature matrices over the whole space, built once per instance on
    /// first use and shared by every predictor (a derived cache: never
    /// serialized, never part of equality).
    #[serde(skip, default)]
    features: OnceLock<SpaceFeatures>,
}

/// Precomputed per-space feature matrices (linear and quadratic).
#[derive(Debug, Clone)]
struct SpaceFeatures {
    linear: Matrix,
    quadratic: Matrix,
}

impl PartialEq for ConfigSpace {
    fn eq(&self, other: &ConfigSpace) -> bool {
        self.configs == other.configs && self.includes_wear_quota == other.includes_wear_quota
    }
}

impl ConfigSpace {
    /// The full space with wear quota enabled at `quota_target` years for
    /// the quota-on half (the paper runs quota at the active lifetime
    /// goal; Table 10's selections all use target = 8).
    #[must_use]
    pub fn full(quota_target: f64) -> ConfigSpace {
        let mut configs = Vec::new();
        for quota in [None, Some(quota_target)] {
            Self::push_variants(&mut configs, quota);
        }
        ConfigSpace {
            configs,
            includes_wear_quota: true,
            features: OnceLock::new(),
        }
    }

    /// The space with wear quota excluded — the space MCT actually learns
    /// over (Section 4.4 excludes wear quota from prediction).
    #[must_use]
    pub fn without_wear_quota() -> ConfigSpace {
        let mut configs = Vec::new();
        Self::push_variants(&mut configs, None);
        ConfigSpace {
            configs,
            includes_wear_quota: false,
            features: OnceLock::new(),
        }
    }

    fn push_variants(out: &mut Vec<NvmConfig>, quota: Option<f64>) {
        let (wear_quota, wear_quota_target) = match quota {
            Some(t) => (true, t),
            None => (false, 0.0),
        };
        // Technique combos: bank_aware in {off} U thresholds, eager in
        // {off} U thresholds.
        let bank_opts: Vec<Option<u32>> = std::iter::once(None)
            .chain(BANK_AWARE_THRESHOLDS.into_iter().map(Some))
            .collect();
        let eager_opts: Vec<Option<u32>> = std::iter::once(None)
            .chain(EAGER_THRESHOLDS.into_iter().map(Some))
            .collect();
        for &bank in &bank_opts {
            for &eager in &eager_opts {
                let uses_slow = bank.is_some() || eager.is_some();
                for (fi, &fast) in LATENCY_GRID.iter().enumerate() {
                    // Without slow-write techniques the slow parameters are
                    // meaningless; canonicalize slow = fast.
                    let slow_choices: Vec<f64> = if uses_slow {
                        LATENCY_GRID[fi..].to_vec()
                    } else {
                        vec![fast]
                    };
                    for slow in slow_choices {
                        // Legal cancellation pairs (Section 3.3.1): none,
                        // slow-only, both. Without slow writes, slow-only
                        // is meaningless: none/both remain.
                        let cancel_pairs: &[(bool, bool)] = if uses_slow {
                            &[(false, false), (false, true), (true, true)]
                        } else {
                            &[(false, false), (true, true)]
                        };
                        for &(fast_c, slow_c) in cancel_pairs {
                            let cfg = NvmConfig {
                                bank_aware: bank.is_some(),
                                bank_aware_threshold: bank.unwrap_or(0),
                                eager_writebacks: eager.is_some(),
                                eager_threshold: eager.unwrap_or(0),
                                wear_quota,
                                wear_quota_target,
                                fast_latency: fast,
                                slow_latency: slow,
                                fast_cancellation: fast_c,
                                slow_cancellation: slow_c,
                            };
                            debug_assert!(cfg.validate().is_ok(), "{cfg}");
                            out.push(cfg);
                        }
                    }
                }
            }
        }
    }

    /// All configurations.
    #[must_use]
    pub fn configs(&self) -> &[NvmConfig] {
        &self.configs
    }

    /// Number of configurations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Always false.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Whether the quota-on half is included.
    #[must_use]
    pub fn includes_wear_quota(&self) -> bool {
        self.includes_wear_quota
    }

    /// Index of the first configuration equal to `cfg`, if present.
    #[must_use]
    pub fn position_of(&self, cfg: &NvmConfig) -> Option<usize> {
        self.configs.iter().position(|c| c == cfg)
    }

    /// Iterate over configurations.
    pub fn iter(&self) -> impl Iterator<Item = &NvmConfig> {
        self.configs.iter()
    }

    /// The feature matrix for the whole space — one row per
    /// configuration, either the 10 raw knob features or their
    /// 65-dimension quadratic expansion.
    ///
    /// Both matrices are built on first call and cached for the lifetime
    /// of this instance, so batched predictors (`predict_all`) never
    /// re-derive per-configuration features.
    ///
    /// # Panics
    /// Panics if the space is empty (never the case for the built-in
    /// constructors).
    #[must_use]
    pub fn feature_matrix(&self, quadratic: bool) -> &Matrix {
        let f = self.features.get_or_init(|| {
            let linear: Vec<Vec<f64>> = self
                .configs
                .iter()
                .map(|c| c.to_vector().to_vec())
                .collect();
            let quadratic: Vec<Vec<f64>> = linear.iter().map(|r| quadratic_expand(r)).collect();
            SpaceFeatures {
                linear: Matrix::from_rows(linear),
                quadratic: Matrix::from_rows(quadratic),
            }
        });
        if quadratic {
            &f.quadratic
        } else {
            &f.linear
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_size_matches_paper_order() {
        // Paper: 3,164 configurations. Our published-range enumeration:
        // slow-tech (24 combos x 28 latency pairs x 3 cancellations) +
        // default-only (7 x 2), doubled for quota on/off = 4,060.
        let full = ConfigSpace::full(8.0);
        assert_eq!(full.len(), 4060);
        assert!(
            (2_500..=5_000).contains(&full.len()),
            "space size {} should be the paper's order of magnitude (3,164)",
            full.len()
        );
        let no_quota = ConfigSpace::without_wear_quota();
        assert_eq!(no_quota.len(), 2030);
    }

    #[test]
    fn all_configs_valid_and_unique() {
        let space = ConfigSpace::full(8.0);
        let mut seen = HashSet::new();
        for c in space.iter() {
            c.validate().unwrap();
            let key = format!("{c:?}");
            assert!(seen.insert(key), "duplicate config {c}");
        }
    }

    #[test]
    fn contains_canonical_configs() {
        let space = ConfigSpace::full(8.0);
        assert!(space.position_of(&NvmConfig::default_config()).is_some());
        assert!(space.position_of(&NvmConfig::static_baseline()).is_some());
    }

    #[test]
    fn no_quota_space_has_no_quota() {
        let space = ConfigSpace::without_wear_quota();
        assert!(space.iter().all(|c| !c.wear_quota));
        assert!(space.position_of(&NvmConfig::static_baseline()).is_none());
        assert!(space
            .position_of(&NvmConfig::static_baseline().without_wear_quota())
            .is_some());
    }

    #[test]
    fn slow_latency_never_below_fast() {
        for c in ConfigSpace::full(8.0).iter() {
            assert!(c.slow_latency >= c.fast_latency);
        }
    }

    #[test]
    fn cancellation_constraint_holds_everywhere() {
        for c in ConfigSpace::full(8.0).iter() {
            assert!(!c.fast_cancellation || c.slow_cancellation);
        }
    }

    #[test]
    fn feature_matrix_rows_match_per_config_features() {
        let space = ConfigSpace::without_wear_quota();
        let lin = space.feature_matrix(false);
        assert_eq!(lin.rows(), space.len());
        assert_eq!(lin.cols(), 10);
        let quad = space.feature_matrix(true);
        assert_eq!(quad.rows(), space.len());
        assert_eq!(quad.cols(), 65);
        for (i, c) in space.iter().enumerate().step_by(211) {
            let base = c.to_vector().to_vec();
            assert_eq!(lin.row(i), base.as_slice());
            assert_eq!(quad.row(i), quadratic_expand(&base).as_slice());
        }
    }

    #[test]
    fn equality_and_serde_ignore_feature_cache() {
        let a = ConfigSpace::without_wear_quota();
        let b = ConfigSpace::without_wear_quota();
        let _ = a.feature_matrix(true); // warm only one side's cache
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: ConfigSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        // The deserialized copy rebuilds its own cache on demand.
        assert_eq!(back.feature_matrix(false).rows(), a.len());
    }
}
