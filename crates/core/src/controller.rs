//! The end-to-end MCT runtime (paper Section 5, Figure 5).
//!
//! Per detected phase, the controller:
//!
//! 1. measures the static baseline briefly (normalization reference);
//! 2. runs the *sampling period*: cyclic fine-grained sampling — every
//!    sample configuration runs for a small unit, looped `rounds` times,
//!    so all samples see similar memory behaviour despite bursts
//!    (Section 5.2);
//! 3. fits the predictor on the samples and predicts all configurations
//!    (wear quota excluded from the learned space per Section 4.4);
//! 4. selects the objective-optimal configuration and applies the
//!    wear-quota fixup (Section 5.3);
//! 5. runs the *testing period* under the chosen configuration, feeding
//!    the phase detector and periodically health-checking against the
//!    baseline, falling back if the choice underperforms (Section 5.4);
//! 6. on a dramatic phase change, restarts from step 1.

use serde::{Deserialize, Serialize};

use mct_sim::fault::FaultPlan;
use mct_sim::stats::{Metrics, RunStats};
use mct_sim::system::{System, SystemConfig};
use mct_sim::trace::AccessSource;
use mct_telemetry::{Event, RecorderHandle, Telemetry};

use crate::config::NvmConfig;
use crate::degrade::{DegradationAction, DegradationLadder};
use crate::objective::Objective;
use crate::optimizer::{optimize, OptimizationResult};
use crate::persist::{config_digest, PersistConfig, PersistSession, StateRecord};
use crate::phase::{PhaseDetector, PhaseDetectorConfig};
use crate::predictor::{lasso_feature_report, MetricsPredictor, ModelKind};
use crate::sampling::{feature_based_samples, random_samples, with_anchors};
use crate::space::ConfigSpace;

/// Controller parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Simulated system parameters.
    #[serde(skip, default)]
    pub system: SystemConfig,
    /// Predictor family (the paper's finalists: `QuadraticLasso` and
    /// `GradientBoosting`).
    pub model: ModelKind,
    /// Feature-based (true) vs random sampling.
    pub feature_based_sampling: bool,
    /// Sample count when random sampling is used.
    pub n_random_samples: usize,
    /// Fine-grained sampling unit, instructions (paper: 100 k).
    pub sample_unit_insts: u64,
    /// Cyclic rounds over the sample set (paper: T / (N * t)).
    pub sampling_rounds: usize,
    /// Exclude wear quota from the learned space (Section 4.4).
    pub exclude_wear_quota: bool,
    /// Apply the wear-quota fixup to the selection (Section 5.3).
    pub quota_fixup: bool,
    /// Phase-detector parameters.
    pub phase: PhaseDetectorConfig,
    /// Instructions of baseline measurement per segment.
    pub baseline_insts: u64,
    /// Total detailed instruction budget (after warmup).
    pub total_insts: u64,
    /// Warmup instructions before measurement starts.
    pub warmup_insts: u64,
    /// Health-check cadence, in phase windows of testing.
    pub health_check_every_windows: u64,
    /// Instructions each health check runs the baseline for.
    pub health_check_insts: u64,
    /// RNG seed (sampling).
    pub seed: u64,
    /// Skip the segment-start refit when the previous segment's health
    /// checks all passed and the new segment's workload intensity sits
    /// within a quarter octave of a banked fit's — the PR 7
    /// fixpoint-elision pattern applied to training. The controller
    /// banks the last few clean fits keyed by their *fit-time*
    /// intensity (so slow drift cannot ratchet an elided model away
    /// from the phase it was trained on), which lets alternating
    /// phases (A→B→A) reuse both models. The bank is dropped whenever
    /// the degradation ladder forces a refit or a revert. Deserializes
    /// to `false` for configs written before this field existed.
    #[serde(default)]
    pub refit_elision: bool,
    /// Optional deterministic fault plan, armed on the simulated system
    /// right after warmup (`mct chaos`). `None` leaves the simulator's
    /// fault hooks disarmed — the zero-overhead hot path.
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// Optional crash-safe state persistence: a write-ahead log plus
    /// segment-boundary snapshots under the configured directory, with
    /// verified-replay recovery and warm starts (`mct run --resume`).
    /// `None` — the default and both presets — keeps the controller
    /// entirely in memory with zero persistence work on the hot path.
    /// See [`crate::persist`] for the recovery contract.
    #[serde(default)]
    pub persist: Option<PersistConfig>,
}

impl ControllerConfig {
    /// A configuration scaled for this reproduction's experiments:
    /// feature-based sampling (~84 samples), 8 k-instruction units, two
    /// cyclic rounds, ~1.4 M sampling + ~4 M testing instructions.
    #[must_use]
    pub fn paper_scaled() -> ControllerConfig {
        ControllerConfig {
            system: SystemConfig::default(),
            model: ModelKind::GradientBoosting,
            feature_based_sampling: true,
            n_random_samples: 77,
            sample_unit_insts: 2_000,
            sampling_rounds: 6,
            exclude_wear_quota: true,
            quota_fixup: true,
            phase: PhaseDetectorConfig::default(),
            baseline_insts: 50_000,
            total_insts: 8_000_000,
            warmup_insts: 1_000_000,
            health_check_every_windows: 5,
            health_check_insts: 30_000,
            seed: 17,
            refit_elision: true,
            fault_plan: None,
            persist: None,
        }
    }

    /// A small, fast configuration for examples and doctests.
    #[must_use]
    pub fn quick_demo() -> ControllerConfig {
        ControllerConfig {
            system: SystemConfig::default(),
            model: ModelKind::QuadraticLasso,
            feature_based_sampling: false,
            n_random_samples: 16,
            sample_unit_insts: 3_000,
            sampling_rounds: 1,
            exclude_wear_quota: true,
            quota_fixup: true,
            phase: PhaseDetectorConfig {
                window_insts: 20_000,
                history_windows: 50,
                recent_windows: 5,
                score_threshold: 15.0,
            },
            baseline_insts: 15_000,
            total_insts: 400_000,
            warmup_insts: 100_000,
            health_check_every_windows: 8,
            health_check_insts: 10_000,
            seed: 17,
            refit_elision: true,
            fault_plan: None,
            persist: None,
        }
    }
}

/// Accumulates raw run quantities so metrics can be aggregated across
/// many measurement windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct MetricAccum {
    insts: u64,
    cycles: f64,
    wear_units: f64,
    elapsed_secs: f64,
    energy_j: f64,
}

impl MetricAccum {
    fn add(&mut self, stats: &RunStats) {
        self.insts += stats.instructions;
        self.cycles += stats.cpu_cycles;
        self.wear_units += stats.wear_units;
        self.elapsed_secs += stats.elapsed.as_secs();
        self.energy_j += stats.energy.total();
    }

    fn metrics(&self, wear_budget: f64) -> Metrics {
        let ipc = if self.cycles > 0.0 {
            self.insts as f64 / self.cycles
        } else {
            0.0
        };
        let lifetime_years = if self.wear_units > 0.0 && self.elapsed_secs > 0.0 {
            wear_budget / (self.wear_units / self.elapsed_secs) / mct_sim::wear::SECONDS_PER_YEAR
        } else {
            f64::INFINITY
        };
        Metrics {
            ipc,
            lifetime_years,
            energy_j: self.energy_j,
        }
    }

    fn is_empty(&self) -> bool {
        self.insts == 0
    }
}

/// Report for one sampling→optimize→test segment (one detected phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentReport {
    /// The optimization outcome for this segment.
    pub optimization: OptimizationResult,
    /// Baseline metrics measured at segment start.
    pub baseline: Metrics,
    /// Aggregate metrics over this segment's sampling period.
    pub sampling: Metrics,
    /// Aggregate metrics over this segment's testing period.
    pub testing: Metrics,
    /// Whether a health check demoted the choice back to the baseline.
    pub health_fallback: bool,
    /// Whether this segment's refit was elided (predictor reused from
    /// the previous segment on a matching phase signature).
    #[serde(default)]
    pub fit_elided: bool,
    /// Whether this segment skipped its sampling period entirely,
    /// coasting on a model restored from a completed prior run's
    /// snapshot (`mct run --resume` warm start).
    #[serde(default)]
    pub warm_started: bool,
    /// Sampling instructions spent.
    pub sampling_insts: u64,
    /// Testing instructions spent.
    pub testing_insts: u64,
}

/// Overall outcome of a controller run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// The last chosen configuration.
    pub chosen_config: NvmConfig,
    /// Aggregate metrics across all testing periods.
    pub final_metrics: Metrics,
    /// Aggregate metrics across all sampling periods (Figure 9's
    /// overhead numerator).
    pub sampling_metrics: Metrics,
    /// The last baseline measurement.
    pub baseline_metrics: Metrics,
    /// Phase changes detected.
    pub phases_detected: u64,
    /// Per-segment details.
    pub segments: Vec<SegmentReport>,
    /// Total sampling instructions.
    pub sampling_insts: u64,
    /// Total testing instructions.
    pub testing_insts: u64,
}

impl Outcome {
    /// Extrapolated IPC when the testing period is `alpha` times the
    /// sampling period (paper Eq. 4):
    /// `IPC_total = (IPC_sampling + alpha * IPC_testing) / (1 + alpha)`.
    #[must_use]
    pub fn extrapolated_ipc(&self, alpha: f64) -> f64 {
        (self.sampling_metrics.ipc + alpha * self.final_metrics.ipc) / (1.0 + alpha)
    }

    /// Extrapolated energy under the same model (energy totals are scaled
    /// to per-instruction terms before mixing).
    #[must_use]
    pub fn extrapolated_energy_per_inst(&self, alpha: f64) -> f64 {
        let sampling_epi = if self.sampling_insts > 0 {
            self.sampling_metrics.energy_j / self.sampling_insts as f64
        } else {
            0.0
        };
        let testing_epi = if self.testing_insts > 0 {
            self.final_metrics.energy_j / self.testing_insts as f64
        } else {
            0.0
        };
        (sampling_epi + alpha * testing_epi) / (1.0 + alpha)
    }
}

/// The MCT runtime controller.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    objective: Objective,
    space: ConfigSpace,
    samples: Vec<NvmConfig>,
    baseline_config: NvmConfig,
    telemetry: Telemetry,
}

impl Controller {
    /// Build a controller.
    ///
    /// # Panics
    /// Panics if the objective fails validation, or if the configured
    /// fault plan is invalid.
    #[must_use]
    pub fn new(cfg: ControllerConfig, objective: Objective) -> Controller {
        objective.validate().expect("invalid objective"); // mct-tidy: allow(P003) -- documented `# Panics` contract
        if let Some(plan) = &cfg.fault_plan {
            plan.validate().expect("invalid fault plan"); // mct-tidy: allow(P003) -- documented `# Panics` contract
        }
        let space = if cfg.exclude_wear_quota {
            ConfigSpace::without_wear_quota()
        } else {
            ConfigSpace::full(objective.lifetime_floor().unwrap_or(8.0))
        };
        let raw_samples = if cfg.feature_based_sampling {
            feature_based_samples(&space, cfg.seed)
        } else {
            random_samples(&space, cfg.n_random_samples.min(space.len()), cfg.seed)
        };
        let anchors = [
            NvmConfig::default_config(),
            NvmConfig::static_baseline().without_wear_quota(),
        ];
        let samples = with_anchors(raw_samples, &anchors);
        Controller {
            cfg,
            objective,
            space,
            samples,
            baseline_config: NvmConfig::static_baseline(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry recorder for decision traces and registry
    /// metrics. The default is a disabled [`mct_telemetry::NullRecorder`],
    /// which skips all instrumentation work.
    #[must_use]
    pub fn with_recorder(mut self, handle: RecorderHandle) -> Controller {
        self.telemetry = Telemetry::attached(handle);
        self
    }

    /// The sample configurations the controller will exercise.
    #[must_use]
    pub fn samples(&self) -> &[NvmConfig] {
        &self.samples
    }

    /// The learnable configuration space.
    #[must_use]
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The objective in force.
    #[must_use]
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Run MCT over `source` for the configured budget.
    ///
    /// With a recorder attached, the whole run is wrapped in a `run` root
    /// span (labeled with the learner) whose children — `warmup`,
    /// `fault.arm`, and one `segment` span per sampling→optimize→test
    /// cycle — cover the control loop end to end, so `mct profile` can
    /// apportion wall time across phases. With the default disabled
    /// telemetry every span call is a single branch.
    ///
    /// # Panics
    /// With [`ControllerConfig::persist`] set: panics if the state store
    /// cannot be opened or recovered, and on any divergence between
    /// re-execution and a recovered log — the crash-recovery contract is
    /// bit-identical re-execution, so a mismatch is a bug that must
    /// surface immediately, never a condition to continue past.
    pub fn run<S: AccessSource>(&mut self, source: &mut S) -> Outcome {
        let wear_budget = self.cfg.system.wear.budget();
        let mut sys = System::new(self.cfg.system.clone(), self.baseline_config.to_policy());
        let run_span =
            self.telemetry
                .span_with("run", 0, &[("learner", self.cfg.model.short_label())]);
        // --- Crash-safe persistence (optional). ---
        // Opening the store replays any existing log: a clean prior run
        // arms the warm-start bank; an interrupted one becomes a
        // verification prefix — the controller re-executes from
        // instruction zero and, while inside the prefix, every record it
        // would write is compared against the log instead of appended,
        // so recovery provably converges on the pre-crash trajectory
        // before any new state is persisted.
        let mut persist = self.cfg.persist.clone().map(|pcfg| {
            let open_span = self.telemetry.span("persist.open", 0);
            let started = StateRecord::RunStarted {
                schema: crate::persist::STATE_SCHEMA_VERSION,
                seed: self.cfg.seed,
                model: self.cfg.model,
                total_insts: self.cfg.total_insts,
                config_digest: config_digest(&self.cfg),
            };
            let session = PersistSession::begin(&pcfg, &started)
                // mct-tidy: allow(P002) -- documented `# Panics` contract: an unrecoverable store must fail loudly
                .unwrap_or_else(|e| panic!("persist: cannot begin session in {}: {e}", pcfg.dir));
            self.telemetry.close_span(open_span, 0);
            if self.telemetry.enabled() {
                self.telemetry
                    .incr("persist.replayed_records", session.replayed() as u64);
                if session.warm_available() {
                    self.telemetry.incr("persist.warm_starts", 1);
                }
            }
            session
        });
        let warmup_span = self.telemetry.span("warmup", 0);
        let warmup_timer = self.telemetry.stage("warmup", 0);
        sys.warmup(source, self.cfg.warmup_insts);
        self.telemetry
            .finish_stage(warmup_timer, self.cfg.warmup_insts);
        // Span clocks stay at 0 through warmup: the trace's `sim_insts`
        // is the *measured* instruction clock (`executed`), which starts
        // after warmup. Wall time still captures the warmup cost.
        self.telemetry.close_span(warmup_span, 0);
        // Faults arm after warmup, so plan timestamps are relative to the
        // start of the measured region (validated in `Controller::new`).
        if let Some(plan) = &self.cfg.fault_plan {
            let arm_span = self.telemetry.span("fault.arm", 0);
            sys.arm_faults(plan);
            self.telemetry.close_span(arm_span, 0);
        }

        let mut detector = PhaseDetector::new(self.cfg.phase);
        // The degradation ladder outlives segments: faults persist across
        // phase boundaries, so escalation must not reset on re-sample.
        let mut ladder = DegradationLadder::new();
        // Bank of recently fitted predictors, each keyed by the measured
        // workload intensity (accesses/kinst) at fit time: a new segment
        // whose intensity stays within a quarter octave of a banked fit
        // (and whose health record is clean) reuses that model instead of
        // refitting — alternating phases (ocean's A→B→A) hit the bank on
        // every return. Entries anchor on the intensity *at fit time*, so
        // slow drift cannot ratchet an elided model arbitrarily far from
        // the phase it was trained on. Invalidated wholesale whenever the
        // ladder forces a refit or a revert — the banked models no longer
        // describe how the system behaves.
        const FIT_CACHE_SLOTS: usize = 4;
        let mut fit_cache: Vec<(f64, MetricsPredictor)> = Vec::new();
        // Warm start: a clean prior run's fitted models pre-seed the
        // elision bank. While the controller coasts on them (until the
        // first fresh fit or ladder action), segments that hit the bank
        // skip their sampling period outright — the `--resume`
        // acceptance criterion. A different workload behind the same
        // config would be caught by the health checks, exactly as a
        // stale banked fit would mid-run.
        let mut warm_coasting = false;
        if let Some(session) = persist.as_mut() {
            for (apki_bits, state) in session.take_warm_bank() {
                if fit_cache.len() < FIT_CACHE_SLOTS {
                    fit_cache.push((
                        f64::from_bits(apki_bits),
                        MetricsPredictor::from_state(state),
                    ));
                    warm_coasting = true;
                }
            }
            if self.telemetry.enabled() {
                self.telemetry.emit(
                    0,
                    Event::PersistRecovery {
                        replayed_records: session.replayed() as u64,
                        warm_start: warm_coasting,
                        restored_models: fit_cache.len() as u64,
                    },
                );
            }
        }
        // Did every health check in the *previous* segment pass? A failed
        // check means the cached model misjudged this regime, so the next
        // segment must refit even if the intensity still matches.
        let mut last_segment_healthy = true;
        let mut segments: Vec<SegmentReport> = Vec::new();
        let mut total_sampling = MetricAccum::default();
        let mut total_testing = MetricAccum::default();
        let mut executed: u64 = 0;
        let mut last_baseline = Metrics {
            ipc: 1.0,
            lifetime_years: 1.0,
            energy_j: 1.0,
        };
        let mut chosen = self.baseline_config;

        while executed < self.cfg.total_insts {
            let seg_index = segments.len() as u64;
            let segment_idx = segments.len().to_string();
            let segment_span =
                self.telemetry
                    .span_with("segment", executed, &[("segment", &segment_idx)]);
            persist_emit(
                &mut persist,
                StateRecord::SegmentStarted {
                    segment: seg_index,
                    executed,
                },
            );
            // The first segment is the trivially-detected initial phase;
            // later segments are announced by the detector at the moment
            // it fires, inside the testing loop below.
            if self.telemetry.enabled() && segments.is_empty() {
                self.telemetry.emit(
                    executed,
                    Event::PhaseDetected {
                        score: 0.0,
                        phases_detected: 0,
                        mean_workload: detector.mean_workload(),
                    },
                );
            }

            // --- Baseline measurement (normalization reference). ---
            let baseline_span = self.telemetry.span("baseline", executed);
            let baseline_timer = self.telemetry.stage("baseline", executed);
            let mut baseline_stats = self.measure(
                &mut sys,
                source,
                self.baseline_config,
                self.cfg.baseline_insts,
                executed,
            );
            // Sparse phases need a longer window before the measurement
            // means anything; extend until ~1000 accesses were observed.
            let observed =
                baseline_stats.mem.reads_completed + baseline_stats.mem.writes_completed();
            let mut extended = false;
            if observed < 1_000 && observed > 0 {
                let extend = self.cfg.baseline_insts * (1_000 / observed.max(50)).min(50);
                let more = self.measure(&mut sys, source, self.baseline_config, extend, executed);
                executed += more.instructions;
                baseline_stats = more;
                extended = true;
            }
            executed += self.cfg.baseline_insts;
            last_baseline = baseline_stats.metrics();
            self.telemetry.finish_stage(baseline_timer, executed);
            self.telemetry.close_span(baseline_span, executed);
            if self.telemetry.enabled() {
                self.telemetry.emit(
                    executed,
                    Event::BaselineMeasured {
                        config: self.baseline_config.to_string(),
                        metrics: last_baseline,
                        insts: baseline_stats.instructions,
                        extended,
                    },
                );
                for (name, v) in baseline_stats.mem_counter_snapshot() {
                    self.telemetry
                        .observe(&format!("mem.baseline.{name}"), v as f64);
                }
            }
            persist_emit(
                &mut persist,
                StateRecord::BaselineMeasured {
                    segment: seg_index,
                    metrics: last_baseline.into(),
                    insts: baseline_stats.instructions,
                    extended,
                },
            );

            // Size the fine-grained sampling unit from the phase's mean
            // memory workload (Section 5.2): dense phases use small units,
            // sparse phases larger ones, targeting ~100 accesses per unit.
            // Many cyclic rounds spread each sample's units across the
            // phase's bursts (the paper loops ~130 times); the sampling
            // period is capped at ~40% of the total budget by shrinking
            // the unit, never the round count, so burst coverage survives.
            let apki = baseline_stats.mem_accesses_per_kinst().max(0.5);
            let ideal_unit = self.cfg.sample_unit_insts.max((100.0 / apki * 1e3) as u64);
            let n_samples = self.samples.len() as u64;
            let sampling_budget = (self.cfg.total_insts as f64 * 0.4) as u64;
            let rounds = self.cfg.sampling_rounds.max(1);
            let unit_insts = ideal_unit
                .min(sampling_budget / (n_samples * rounds as u64))
                .max(1_000);

            let phase_sig = crate::phase::phase_signature(apki);
            // Same-phase test: the banked fit nearest in intensity, if it
            // sits within a quarter octave. A ratio test (not bucket
            // equality) so ordinary segment-to-segment measurement jitter
            // cannot straddle a bucket edge and force a spurious refit;
            // ties keep the earliest (oldest) entry. Evaluated before the
            // sampling period (its inputs — the bank, the baseline
            // intensity, last segment's health — are all fixed by now) so
            // a warm start can skip sampling altogether.
            let cache_hit = fit_cache
                .iter()
                .enumerate()
                .map(|(slot, (fit_apki, _))| (slot, (apki / fit_apki).log2().abs()))
                .filter(|&(_, dist)| dist <= 0.25)
                .fold(None, |best: Option<(usize, f64)>, cand| match best {
                    Some((_, d)) if d <= cand.1 => best,
                    _ => Some(cand),
                })
                .map(|(slot, _)| slot);
            let fit_elided = self.cfg.refit_elision && last_segment_healthy && cache_hit.is_some();
            // Warm start: still coasting on restored models and this
            // segment's intensity hits the bank — skip the sampling
            // period outright (`sampling_insts` stays 0, the `--resume`
            // acceptance criterion).
            let warm_started = warm_coasting && fit_elided;

            // --- Sampling period: cyclic fine-grained sampling. ---
            let mut accums = vec![MetricAccum::default(); self.samples.len()];
            let mut seg_sampling = MetricAccum::default();
            if warm_started {
                if self.telemetry.enabled() {
                    self.telemetry.incr("persist.sampling_skipped", 1);
                }
            } else {
                let sampling_span = self.telemetry.span("sampling", executed);
                let sampling_timer = self.telemetry.stage("sampling", executed);
                for round in 0..rounds {
                    let round_span = self.telemetry.span("sampling.round", executed);
                    for (i, cfg) in self.samples.clone().into_iter().enumerate() {
                        let stats = self.measure(&mut sys, source, cfg, unit_insts, executed);
                        executed += stats.instructions;
                        accums[i].add(&stats);
                        seg_sampling.add(&stats);
                        total_sampling.add(&stats);
                    }
                    self.telemetry.close_span(round_span, executed);
                    if self.telemetry.enabled() {
                        self.telemetry.incr("samples_taken", n_samples);
                        self.telemetry.emit(
                            executed,
                            Event::SamplingRound {
                                round: round as u64,
                                total_rounds: rounds as u64,
                                samples: n_samples,
                                unit_insts,
                            },
                        );
                    }
                }
                self.telemetry.finish_stage(sampling_timer, executed);
                self.telemetry.close_span(sampling_span, executed);
            }
            // With sampling skipped, an all-zero sample set would poison
            // a later ladder-forced refit — keep it empty instead.
            let mut sample_data: Vec<(NvmConfig, Metrics)> = if warm_started {
                Vec::new()
            } else {
                self.samples
                    .iter()
                    .zip(&accums)
                    .map(|(c, a)| (*c, a.metrics(wear_budget)))
                    .collect()
            };

            // Normalize to the *cyclically sampled* baseline anchor: the
            // pre-window baseline above can land inside a single burst
            // phase, while the anchor sample saw the same phase mixture as
            // every other sample (the whole point of cyclic fine-grained
            // sampling, Section 5.2). A warm-started segment has no
            // anchor sample; the pre-window baseline stands.
            if !warm_started {
                let anchor = NvmConfig::static_baseline().without_wear_quota();
                if let Some(idx) = self.samples.iter().position(|c| *c == anchor) {
                    last_baseline = accums[idx].metrics(wear_budget);
                }
            }
            // Health-check reference: accumulated windows of the *actual*
            // baseline (with its wear quota). The anchor above is
            // quota-free and would read systematically fast.
            let mut base_accum = MetricAccum::default();
            let mut health_checks = 0u32;

            // --- Prediction over the full space. ---
            // Decision latency (fit + predict_all + optimize, host time)
            // accumulates across the two spans so the diagnostics block
            // between them — refits, lasso reports — is not charged to it.
            let mut decision_us = 0.0;
            // Crash recovery: a fresh fit inside the replayed prefix
            // restores its persisted model instead of refitting, pinning
            // the save/restore path to the bit-identical-decisions
            // contract on every recovery (not only in unit tests).
            let restored = if fit_elided {
                None
            } else {
                persist
                    .as_ref()
                    .and_then(|s| s.replayed_fit(seg_index))
                    .map(MetricsPredictor::from_state)
            };
            let predictions;
            if fit_elided {
                // Same phase signature, clean health record: the cached
                // predictor still describes this phase. Skip the fit
                // span and the diagnostics refits entirely.
                persist_emit(
                    &mut persist,
                    StateRecord::FitCompleted {
                        segment: seg_index,
                        elided: true,
                        apki: apki.to_bits(),
                        signature: phase_sig,
                        model: None,
                    },
                );
                if self.telemetry.enabled() {
                    self.telemetry.incr("fit.elided", 1);
                    self.telemetry.emit(
                        executed,
                        Event::FitElided {
                            segment: segments.len() as u64,
                            signature: phase_sig,
                            learner: self.cfg.model.short_label().to_string(),
                        },
                    );
                }
                // mct-tidy: allow(P003) -- fit_elided implies a banked hit
                let predictor = &fit_cache[cache_hit.expect("elision requires a cached fit")].1;
                let predict_span = self.telemetry.span("predict", executed);
                // mct-tidy: allow(D002) -- telemetry-gated latency probe; never feeds results
                let decision_start = self.telemetry.enabled().then(std::time::Instant::now);
                predictions = predictor.predict_all(&self.space);
                self.telemetry.close_span(predict_span, executed);
                if let Some(start) = decision_start {
                    decision_us += start.elapsed().as_secs_f64() * 1e6;
                }
            } else {
                let fit_timer = self.telemetry.stage("fit", executed);
                // mct-tidy: allow(D002) -- telemetry-gated latency probe; never feeds results
                let decision_start = self.telemetry.enabled().then(std::time::Instant::now);
                let fit_span = self.telemetry.span_with(
                    "fit",
                    executed,
                    &[("learner", self.cfg.model.short_label())],
                );
                let restored_hit = restored.is_some();
                let predictor = if let Some(p) = restored {
                    p
                } else {
                    let mut p = MetricsPredictor::new(self.cfg.model);
                    p.fit_traced(
                        &sample_data,
                        Some(last_baseline),
                        &mut self.telemetry,
                        executed,
                    );
                    p
                };
                // The first fresh fit ends warm coasting: from here the
                // controller's bank is its own, and sampling resumes its
                // normal cadence.
                warm_coasting = false;
                if restored_hit && self.telemetry.enabled() {
                    self.telemetry.incr("persist.models_restored", 1);
                }
                persist_emit(
                    &mut persist,
                    StateRecord::FitCompleted {
                        segment: seg_index,
                        elided: false,
                        apki: apki.to_bits(),
                        signature: phase_sig,
                        model: predictor.save_state(),
                    },
                );
                self.telemetry.close_span(fit_span, executed);
                let predict_span = self.telemetry.span("predict", executed);
                predictions = predictor.predict_all(&self.space);
                self.telemetry.close_span(predict_span, executed);
                if let Some(start) = decision_start {
                    decision_us += start.elapsed().as_secs_f64() * 1e6;
                }
                self.telemetry.finish_stage(fit_timer, executed);
                if self.telemetry.enabled() {
                    // Diagnostics-only work (k-fold refits, a lasso report)
                    // runs solely when a recorder is attached.
                    self.telemetry.incr("predictor_refits", 1);
                    let lasso_features = if matches!(
                        self.cfg.model,
                        ModelKind::LinearLasso | ModelKind::QuadraticLasso
                    ) {
                        let quadratic = self.cfg.model == ModelKind::QuadraticLasso;
                        lasso_feature_report(&sample_data, 0, quadratic, 0.01)
                            .into_iter()
                            .filter(|(_, w)| w.abs() > 1e-6)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    self.telemetry.emit(
                        executed,
                        Event::PredictorFitted {
                            model: self.cfg.model.label().to_string(),
                            n_samples: sample_data.len() as u64,
                            cv_r2_ipc: predictor.cv_r2_ipc(&sample_data, 4),
                            lasso_features,
                        },
                    );
                }
                // Bank the fresh fit: refresh the slot covering this
                // intensity if one exists, else evict the oldest entry.
                if let Some(slot) = cache_hit {
                    fit_cache[slot] = (apki, predictor);
                } else {
                    if fit_cache.len() == FIT_CACHE_SLOTS {
                        fit_cache.remove(0);
                    }
                    fit_cache.push((apki, predictor));
                }
            }

            // --- Constrained optimization + wear-quota fixup. ---
            let optimize_timer = self.telemetry.stage("optimize", executed);
            let decide_span = self.telemetry.span("decide", executed);
            // mct-tidy: allow(D002) -- telemetry-gated latency probe; never feeds results
            let decision_start = self.telemetry.enabled().then(std::time::Instant::now);
            let mut opt = optimize(
                &self.space,
                &predictions,
                &self.objective,
                self.baseline_config,
                self.cfg.quota_fixup,
            );
            chosen = opt.config;
            if let Some(start) = decision_start {
                decision_us += start.elapsed().as_secs_f64() * 1e6;
                self.telemetry.observe("decision.latency_us", decision_us);
                self.telemetry.observe_with(
                    "decision.latency_us",
                    &[("learner", self.cfg.model.short_label())],
                    decision_us,
                );
            }
            self.telemetry.close_span(decide_span, executed);
            self.telemetry.finish_stage(optimize_timer, executed);
            if self.telemetry.enabled() {
                if opt.fell_back {
                    self.telemetry.incr("optimizer_fallbacks", 1);
                }
                let floor = self.objective.lifetime_floor();
                self.telemetry.emit(
                    executed,
                    Event::ConfigSelected {
                        config: chosen.to_string(),
                        config_before_fixup: opt
                            .fixup_changed()
                            .then(|| opt.config_before_fixup.to_string()),
                        predicted: opt.predicted,
                        lifetime_slack_years: opt.predicted.lifetime_years - floor.unwrap_or(0.0),
                        quota_fixup_applied: self.cfg.quota_fixup && floor.is_some(),
                        fell_back: opt.fell_back,
                    },
                );
            }
            persist_emit(
                &mut persist,
                StateRecord::DecisionMade {
                    segment: seg_index,
                    config: chosen,
                    predicted: opt.predicted.into(),
                    fell_back: opt.fell_back,
                    refit: false,
                },
            );

            // --- Testing period with health checks & phase detection. ---
            // The measured region is finalized only at health-check and
            // phase boundaries (not per window): finalizing drains the
            // write queues, and doing so every window would deflate the
            // testing IPC relative to the long-window methodology the
            // static/ideal references are measured with.
            sys.set_policy(chosen.to_policy());
            sys.run_window(source, self.cfg.phase.window_insts / 4); // settle
            executed += self.cfg.phase.window_insts / 4;
            sys.reset_stats();
            detector.reset();
            let testing_span = self.telemetry.span("testing", executed);
            let testing_timer = self.telemetry.stage("testing", executed);
            let mut seg_testing = MetricAccum::default();
            let mut health_fallback = false;
            let mut seg_health_ok = true;
            let mut windows: u64 = 0;
            let mut phase_change = false;
            while executed < self.cfg.total_insts {
                let before = sys.perf_counters();
                sys.run_window(source, self.cfg.phase.window_insts);
                let after = sys.perf_counters();
                executed += self.cfg.phase.window_insts;
                windows += 1;
                let workload = after.workload_since(&before) as f64;
                if detector.observe(workload) {
                    phase_change = true;
                    if self.telemetry.enabled() {
                        self.telemetry.incr("phase_changes", 1);
                        self.telemetry.emit(
                            executed,
                            Event::PhaseDetected {
                                score: detector.last_score(),
                                phases_detected: detector.phases_detected(),
                                mean_workload: workload * 1e3 / self.cfg.phase.window_insts as f64,
                            },
                        );
                    }
                }
                if phase_change {
                    let stats = sys.finalize();
                    seg_testing.add(&stats);
                    total_testing.add(&stats);
                    sys.reset_stats();
                    break;
                }
                // Periodic health check: run the baseline briefly and
                // demote the choice if it underperforms (Section 5.4).
                if !health_fallback
                    && self.cfg.health_check_every_windows > 0
                    && windows.is_multiple_of(self.cfg.health_check_every_windows)
                {
                    let health_span = self.telemetry.span("health_check", executed);
                    let stats = sys.finalize();
                    seg_testing.add(&stats);
                    total_testing.add(&stats);
                    sys.reset_stats();
                    let hc = self.measure(
                        &mut sys,
                        source,
                        self.baseline_config,
                        self.cfg.health_check_insts,
                        executed,
                    );
                    executed += hc.instructions;
                    // Accumulate baseline health-check windows so the
                    // reference covers the same phase mixture the testing
                    // aggregate does (one window is burst-biased); only
                    // act once at least two windows accumulated.
                    base_accum.add(&hc);
                    health_checks += 1;
                    let health_baseline = base_accum.metrics(wear_budget);
                    let testing_so_far = seg_testing.metrics(wear_budget);
                    let failed = DegradationLadder::reading_failed(
                        health_checks,
                        testing_so_far.ipc,
                        health_baseline.ipc,
                        testing_so_far.lifetime_years,
                        self.objective.lifetime_floor(),
                    );
                    // A failed check escalates the degradation ladder one
                    // rung: re-sample, then refit, then the paper's
                    // revert-to-static fallback (Section 5.4).
                    if failed {
                        seg_health_ok = false;
                    }
                    persist_emit(
                        &mut persist,
                        StateRecord::HealthChecked {
                            segment: seg_index,
                            check: health_checks,
                            passed: !failed,
                            testing_ipc: testing_so_far.ipc.to_bits(),
                            baseline_ipc: health_baseline.ipc.to_bits(),
                        },
                    );
                    let (action, transition) = ladder.observe(failed);
                    if let Some(tr) = &transition {
                        persist_emit(
                            &mut persist,
                            StateRecord::LadderMoved {
                                segment: seg_index,
                                from: tr.from,
                                to: tr.to,
                                failures: tr.failures,
                            },
                        );
                    }
                    let mut resample = false;
                    match action {
                        DegradationAction::None => {}
                        DegradationAction::Resample => resample = true,
                        DegradationAction::Refit => {
                            // Fold the degraded testing observation into
                            // the sample set and re-optimize in place, so
                            // the model sees how the choice actually ran.
                            let refit_span = self.telemetry.span("refit", executed);
                            sample_data.push((chosen, testing_so_far));
                            let mut refit = MetricsPredictor::new(self.cfg.model);
                            refit.fit_traced(
                                &sample_data,
                                Some(last_baseline),
                                &mut self.telemetry,
                                executed,
                            );
                            let repredictions = refit.predict_all(&self.space);
                            opt = optimize(
                                &self.space,
                                &repredictions,
                                &self.objective,
                                self.baseline_config,
                                self.cfg.quota_fixup,
                            );
                            chosen = opt.config;
                            self.telemetry.close_span(refit_span, executed);
                            persist_emit(
                                &mut persist,
                                StateRecord::DecisionMade {
                                    segment: seg_index,
                                    config: chosen,
                                    predicted: opt.predicted.into(),
                                    fell_back: opt.fell_back,
                                    refit: true,
                                },
                            );
                            // The degraded refit mixed testing data into
                            // the sample set; it is not a clean phase fit
                            // and must never be reused by elision.
                            fit_cache.clear();
                            warm_coasting = false;
                        }
                        DegradationAction::RevertToStatic => {
                            health_fallback = true;
                            chosen = self.baseline_config;
                            fit_cache.clear();
                            warm_coasting = false;
                        }
                    }
                    if self.telemetry.enabled() {
                        self.telemetry.incr("health_checks", 1);
                        if health_fallback {
                            self.telemetry.incr("health_fallbacks", 1);
                        }
                        self.telemetry.emit(
                            executed,
                            Event::HealthCheck {
                                testing_ipc: testing_so_far.ipc,
                                baseline_ipc: health_baseline.ipc,
                                passed: !failed,
                                fallback_taken: health_fallback,
                            },
                        );
                        if let Some(tr) = transition {
                            self.telemetry.incr("degradation_transitions", 1);
                            self.telemetry.emit(
                                executed,
                                Event::DegradationTransition {
                                    from: tr.from.label().to_string(),
                                    to: tr.to.label().to_string(),
                                    failures: tr.failures,
                                    testing_ipc: testing_so_far.ipc,
                                    baseline_ipc: health_baseline.ipc,
                                    // Clamp: JSON has no Infinity literal.
                                    lifetime_years: testing_so_far.lifetime_years.min(1e9),
                                },
                            );
                        }
                    }
                    self.telemetry.close_span(health_span, executed);
                    if resample {
                        // Rung 1: abandon the testing period and restart
                        // the segment so sampling observes the degraded
                        // regime. Stats were finalized and reset above, so
                        // the tail flush below is a no-op.
                        break;
                    }
                    sys.set_policy(chosen.to_policy());
                    sys.run_window(source, self.cfg.phase.window_insts / 4);
                    executed += self.cfg.phase.window_insts / 4;
                    sys.reset_stats();
                }
            }
            // Flush the tail of the measured region. The wear meter is
            // snapshotted after the finalize (it still covers the final
            // measured epoch) and before the reset clears it.
            let seg_wear_meter = {
                let stats = sys.finalize();
                if stats.instructions > 0 {
                    seg_testing.add(&stats);
                    total_testing.add(&stats);
                }
                let snap = sys.wear_snapshot();
                sys.reset_stats();
                snap
            };
            last_segment_healthy = seg_health_ok;
            self.telemetry.finish_stage(testing_timer, executed);
            self.telemetry.close_span(testing_span, executed);
            if self.telemetry.enabled() {
                let realized = if seg_testing.is_empty() {
                    seg_sampling.metrics(wear_budget)
                } else {
                    seg_testing.metrics(wear_budget)
                };
                self.telemetry.emit(
                    executed,
                    Event::SegmentCompleted {
                        segment: segments.len() as u64,
                        config: chosen.to_string(),
                        predicted: (!opt.fell_back).then_some(opt.predicted),
                        realized,
                        insts: seg_sampling.insts + seg_testing.insts,
                    },
                );
            }

            let seg_testing_metrics = if seg_testing.is_empty() {
                seg_sampling.metrics(wear_budget)
            } else {
                seg_testing.metrics(wear_budget)
            };
            persist_emit(
                &mut persist,
                StateRecord::WearDelta {
                    segment: seg_index,
                    sampling_wear: seg_sampling.wear_units.to_bits(),
                    testing_wear: seg_testing.wear_units.to_bits(),
                    meter: seg_wear_meter,
                },
            );
            persist_emit(
                &mut persist,
                StateRecord::SegmentCompleted {
                    segment: seg_index,
                    chosen,
                    health_fallback,
                    fit_elided,
                    warm_started,
                    sampling_insts: seg_sampling.insts,
                    testing_insts: seg_testing.insts,
                    testing: seg_testing_metrics.into(),
                },
            );
            // Segment boundaries compact the log into a snapshot (a
            // no-op while recovery is still verifying the prefix, and
            // after an injected crash).
            if let Some(session) = persist.as_mut() {
                let snap_span = self.telemetry.span("persist.snapshot", executed);
                session
                    .checkpoint()
                    // mct-tidy: allow(P003) -- documented `# Panics` contract: a failing store must not be ignored
                    .expect("persist: segment snapshot failed");
                self.telemetry.close_span(snap_span, executed);
            }

            segments.push(SegmentReport {
                optimization: opt,
                baseline: last_baseline,
                sampling: seg_sampling.metrics(wear_budget),
                testing: seg_testing_metrics,
                health_fallback,
                fit_elided,
                warm_started,
                sampling_insts: seg_sampling.insts,
                testing_insts: seg_testing.insts,
            });
            self.telemetry.close_span(segment_span, executed);
        }

        let final_metrics = if total_testing.is_empty() {
            total_sampling.metrics(wear_budget)
        } else {
            total_testing.metrics(wear_budget)
        };
        persist_emit(
            &mut persist,
            StateRecord::RunCompleted {
                executed,
                chosen,
                segments: segments.len() as u64,
                final_metrics: final_metrics.into(),
            },
        );
        if let Some(session) = persist.as_mut() {
            // The final snapshot compacts a clean run to one snapshot
            // whose log ends in `run_completed` — the warm-start source
            // for the next `--resume`.
            session
                .checkpoint()
                // mct-tidy: allow(P003) -- documented `# Panics` contract: a failing store must not be ignored
                .expect("persist: final snapshot failed");
            if self.telemetry.enabled() {
                self.telemetry.incr("persist.appends", session.appends());
                self.telemetry
                    .incr("persist.snapshots", session.snapshots());
            }
        }
        if self.telemetry.enabled() {
            let fallbacks = segments
                .iter()
                .filter(|s| s.health_fallback || s.optimization.fell_back)
                .count() as u64;
            self.telemetry.emit(
                executed,
                Event::RunCompleted {
                    segments: segments.len() as u64,
                    total_insts: executed,
                    fallbacks,
                    metrics: final_metrics,
                },
            );
            self.telemetry.close_span(run_span, executed);
            self.telemetry.finish(executed);
        }
        Outcome {
            chosen_config: chosen,
            final_metrics,
            sampling_metrics: total_sampling.metrics(wear_budget),
            baseline_metrics: last_baseline,
            phases_detected: detector.phases_detected(),
            segments,
            sampling_insts: total_sampling.insts,
            testing_insts: total_testing.insts,
        }
    }

    /// Run one measurement window under `config` and return its stats.
    ///
    /// A settle window (one quarter of the measurement) runs between the
    /// policy switch and the measured region: switching drains the memory
    /// queues, and queue-occupancy-dependent behaviour (bank-aware issue,
    /// drain mode) is unrepresentative until they refill.
    ///
    /// With a recorder attached, each window also feeds the registry's
    /// `sim.accesses` counter and `sim.accesses_per_sec` histogram (host
    /// wall-clock simulator throughput), and the measured region is
    /// wrapped in a `sim.window` leaf span — the profiler's view of raw
    /// simulator time under whichever stage requested the window.
    fn measure<S: AccessSource>(
        &mut self,
        sys: &mut System,
        source: &mut S,
        config: NvmConfig,
        insts: u64,
        executed: u64,
    ) -> RunStats {
        sys.set_policy(config.to_policy());
        sys.run_window(source, (insts / 4).max(500));
        sys.reset_stats();
        // One recorder gate for the whole probe: with the default
        // NullRecorder the measured region runs with zero telemetry calls
        // in front of it (each span/observe call would branch on its own,
        // but four branches per window add up across a sweep's thousands
        // of windows).
        // Both span edges carry the caller's `executed` clock: the caller
        // only advances it after the window returns, and constant edges
        // keep the trace's sim_insts monotone. Duration lives in wall_us.
        let probe = self.telemetry.enabled().then(|| {
            let span = self.telemetry.span("sim.window", executed);
            // mct-tidy: allow(D002) -- telemetry-gated latency probe; never feeds results
            (span, std::time::Instant::now())
        });
        sys.run_window(source, insts);
        let stats = sys.finalize();
        sys.reset_stats();
        if let Some((window_span, start)) = probe {
            self.telemetry.close_span(window_span, executed);
            let accesses = stats.mem.reads_completed + stats.mem.writes_completed();
            self.telemetry.incr("sim.accesses", accesses);
            let host_secs = start.elapsed().as_secs_f64();
            if host_secs > 0.0 && accesses > 0 {
                self.telemetry
                    .observe("sim.accesses_per_sec", accesses as f64 / host_secs);
            }
        }
        stats
    }
}

/// Append (or, during recovery, verify) one state record. A no-op when
/// persistence is off — `None` costs one branch on the hot path.
///
/// # Panics
/// Panics on store failure or on divergence between re-execution and a
/// recovered log: the crash-recovery contract is bit-identical
/// re-execution, so a mismatch is a bug that must surface immediately —
/// continuing would persist split-brain state.
fn persist_emit(session: &mut Option<PersistSession>, record: StateRecord) {
    if let Some(s) = session.as_mut() {
        s.emit(record)
            // mct-tidy: allow(P003) -- documented `# Panics` contract: divergence must fail loudly, never persist split-brain state
            .expect("persist: state record rejected");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_workloads::Workload;

    fn quick() -> ControllerConfig {
        ControllerConfig::quick_demo()
    }

    #[test]
    fn runs_end_to_end_on_stream() {
        let mut c = Controller::new(quick(), Objective::paper_default(8.0));
        let outcome = c.run(&mut Workload::Stream.source(3));
        assert!(outcome.final_metrics.ipc > 0.0);
        assert!(!outcome.segments.is_empty());
        assert!(outcome.testing_insts > 0);
        assert!(outcome.sampling_insts > 0);
        outcome.chosen_config.validate().unwrap();
    }

    #[test]
    fn quota_fixup_applied_to_choice() {
        let mut c = Controller::new(quick(), Objective::paper_default(8.0));
        let outcome = c.run(&mut Workload::Stream.source(3));
        let seg = &outcome.segments[0];
        if !seg.health_fallback && !seg.optimization.fell_back {
            assert!(seg.optimization.config.wear_quota);
            assert_eq!(seg.optimization.config.wear_quota_target, 8.0);
        }
    }

    #[test]
    fn samples_include_anchors() {
        let c = Controller::new(quick(), Objective::paper_default(8.0));
        assert!(c
            .samples()
            .iter()
            .any(|s| *s == NvmConfig::default_config()));
        assert!(c
            .samples()
            .iter()
            .any(|s| *s == NvmConfig::static_baseline().without_wear_quota()));
    }

    #[test]
    fn feature_based_controller_has_more_samples() {
        let mut cfg = quick();
        cfg.feature_based_sampling = true;
        let c = Controller::new(cfg, Objective::paper_default(8.0));
        assert!(c.samples().len() >= 60);
    }

    #[test]
    fn extrapolation_formula() {
        let outcome = Outcome {
            chosen_config: NvmConfig::default_config(),
            final_metrics: Metrics {
                ipc: 1.0,
                lifetime_years: 8.0,
                energy_j: 10.0,
            },
            sampling_metrics: Metrics {
                ipc: 0.5,
                lifetime_years: 8.0,
                energy_j: 2.0,
            },
            baseline_metrics: Metrics {
                ipc: 0.9,
                lifetime_years: 8.0,
                energy_j: 9.0,
            },
            phases_detected: 0,
            segments: vec![],
            sampling_insts: 1000,
            testing_insts: 1000,
        };
        // alpha = 1: mean of sampling and testing IPC.
        assert!((outcome.extrapolated_ipc(1.0) - 0.75).abs() < 1e-12);
        // alpha -> large: approaches testing IPC.
        assert!((outcome.extrapolated_ipc(1e9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ocean_phases_trigger_resampling() {
        let mut cfg = quick();
        // Long enough to cross ocean's 2M-instruction phase boundary.
        cfg.total_insts = 3_000_000;
        cfg.warmup_insts = 200_000;
        cfg.phase.window_insts = 50_000;
        cfg.phase.history_windows = 40;
        cfg.phase.recent_windows = 4;
        let mut c = Controller::new(cfg, Objective::paper_default(8.0));
        let outcome = c.run(&mut Workload::Ocean.source(5));
        assert!(
            outcome.segments.len() >= 2,
            "ocean's coarse phases should trigger resampling (got {} segments, {} phases)",
            outcome.segments.len(),
            outcome.phases_detected
        );
    }
}
