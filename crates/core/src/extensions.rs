//! Extensions beyond the paper's case study: the two remaining Table 1
//! tradeoffs.
//!
//! The paper argues MCT generalizes to "architectural techniques in NVMs
//! that involve these three features" — write latency, slow-write latency
//! and cancellation — citing write-latency-vs-retention (\[24\]\[53\]\[23\]) and
//! read-latency-vs-disturbance (\[30\]\[48\]) as examples. This module makes
//! that concrete: [`ExtendedNvmConfig`] augments the paper's 10-dimensional
//! vector with retention-relaxed writes and turbo reads (both implemented
//! for real in `mct-sim`), and [`extended_space`] enumerates a learnable
//! space over them so the unchanged predictor/optimizer pipeline can run.

use serde::{Deserialize, Serialize};

use mct_sim::policy::{MellowPolicy, RetentionRelax, TurboRead};

use crate::config::NvmConfig;
use crate::error::MctError;
use crate::space::ConfigSpace;

/// Retention-relax levels exposed to the learner (write speedup).
pub const RETENTION_SPEEDUPS: [f64; 3] = [0.5, 0.625, 0.75];

/// Retention window used for all relax levels, ns (scaled to simulation
/// windows the way the paper scales instruction budgets).
pub const RETENTION_WINDOW_NS: f64 = 200_000.0;

/// Turbo-read levels exposed to the learner (read speedup).
pub const TURBO_SPEEDUPS: [f64; 2] = [0.5, 0.7];

/// Turbo-read disturb thresholds.
pub const DISTURB_THRESHOLDS: [u32; 2] = [32, 128];

/// A configuration in the extended (12-ish dimensional) space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtendedNvmConfig {
    /// The paper's base configuration.
    pub base: NvmConfig,
    /// Retention-relaxed fast writes (write speedup), `None` = off.
    pub retention_speedup: Option<f64>,
    /// Turbo reads: (read speedup, disturb threshold), `None` = off.
    pub turbo: Option<(f64, u32)>,
}

impl ExtendedNvmConfig {
    /// A plain (paper-space) configuration.
    #[must_use]
    pub fn plain(base: NvmConfig) -> ExtendedNvmConfig {
        ExtendedNvmConfig {
            base,
            retention_speedup: None,
            turbo: None,
        }
    }

    /// Validate base constraints plus extension ranges.
    ///
    /// # Errors
    /// Returns [`MctError::InvalidConfig`] on violations.
    pub fn validate(&self) -> Result<(), MctError> {
        self.base.validate()?;
        if let Some(s) = self.retention_speedup {
            if !(s > 0.0 && s < 1.0) {
                return Err(MctError::InvalidConfig(
                    "retention speedup must be in (0, 1)".to_string(),
                ));
            }
        }
        if let Some((s, th)) = self.turbo {
            if !(s > 0.0 && s < 1.0) || th == 0 {
                return Err(MctError::InvalidConfig(
                    "turbo read parameters out of range".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Lower to the simulator policy.
    #[must_use]
    pub fn to_policy(&self) -> MellowPolicy {
        let mut policy = self.base.to_policy();
        policy.retention = self.retention_speedup.map(|write_speedup| RetentionRelax {
            write_speedup,
            retention_ns: RETENTION_WINDOW_NS,
        });
        policy.turbo_read = self
            .turbo
            .map(|(read_speedup, disturb_threshold)| TurboRead {
                read_speedup,
                disturb_threshold,
            });
        policy
    }

    /// The 13-dimensional learning vector: the paper's 10 dims plus
    /// `[retention_on, retention_speedup, turbo_on... ]` compressed to
    /// three extra features (`retention speedup` with 1.0 = off, `turbo
    /// speedup` with 1.0 = off, `disturb threshold` with 0 = off).
    #[must_use]
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v = self.base.to_vector().to_vec();
        v.push(self.retention_speedup.unwrap_or(1.0));
        v.push(self.turbo.map_or(1.0, |(s, _)| s));
        v.push(self.turbo.map_or(0.0, |(_, th)| f64::from(th)));
        v
    }
}

impl std::fmt::Display for ExtendedNvmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.base)?;
        if let Some(s) = self.retention_speedup {
            write!(f, " ret:{s:.2}")?;
        }
        if let Some((s, th)) = self.turbo {
            write!(f, " turbo:{s:.1}/{th}")?;
        }
        Ok(())
    }
}

/// Enumerate an extended learnable space: every quota-free base config
/// crossed with the extension levels (off + the published grids).
///
/// The full cross product would be ~2030 x 12; `base_stride` thins the
/// base space to keep sweeps tractable.
#[must_use]
pub fn extended_space(base_stride: usize) -> Vec<ExtendedNvmConfig> {
    let base = ConfigSpace::without_wear_quota();
    let mut out = Vec::new();
    let retention_opts: Vec<Option<f64>> = std::iter::once(None)
        .chain(RETENTION_SPEEDUPS.into_iter().map(Some))
        .collect();
    let turbo_opts: Vec<Option<(f64, u32)>> = std::iter::once(None)
        .chain(
            TURBO_SPEEDUPS
                .into_iter()
                .flat_map(|s| DISTURB_THRESHOLDS.into_iter().map(move |th| Some((s, th)))),
        )
        .collect();
    for cfg in base.configs().iter().step_by(base_stride.max(1)) {
        for &retention_speedup in &retention_opts {
            for &turbo in &turbo_opts {
                let ext = ExtendedNvmConfig {
                    base: *cfg,
                    retention_speedup,
                    turbo,
                };
                debug_assert!(ext.validate().is_ok());
                out.push(ext);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_config_round_trips() {
        let e = ExtendedNvmConfig::plain(NvmConfig::static_baseline());
        e.validate().unwrap();
        assert_eq!(e.to_policy(), NvmConfig::static_baseline().to_policy());
        assert_eq!(e.to_vector().len(), 13);
        assert_eq!(e.to_vector()[10], 1.0, "retention off encodes as 1.0");
    }

    #[test]
    fn extended_policy_carries_extensions() {
        let e = ExtendedNvmConfig {
            base: NvmConfig::default_config(),
            retention_speedup: Some(0.5),
            turbo: Some((0.7, 32)),
        };
        e.validate().unwrap();
        let p = e.to_policy();
        assert_eq!(p.retention.unwrap().write_speedup, 0.5);
        assert_eq!(p.turbo_read.unwrap().disturb_threshold, 32);
        let v = e.to_vector();
        assert_eq!(v[10], 0.5);
        assert_eq!(v[11], 0.7);
        assert_eq!(v[12], 32.0);
    }

    #[test]
    fn invalid_extensions_rejected() {
        let e = ExtendedNvmConfig {
            base: NvmConfig::default_config(),
            retention_speedup: Some(1.5),
            turbo: None,
        };
        assert!(e.validate().is_err());
        let e = ExtendedNvmConfig {
            base: NvmConfig::default_config(),
            retention_speedup: None,
            turbo: Some((0.5, 0)),
        };
        assert!(e.validate().is_err());
    }

    #[test]
    fn extended_space_enumerates_cross_product() {
        let space = extended_space(64);
        // 4 retention options x 5 turbo options per base config.
        assert_eq!(space.len() % 20, 0);
        assert!(space
            .iter()
            .any(|e| e.retention_speedup.is_some() && e.turbo.is_some()));
        for e in &space {
            e.validate().unwrap();
        }
    }

    #[test]
    fn display_includes_extensions() {
        let e = ExtendedNvmConfig {
            base: NvmConfig::default_config(),
            retention_speedup: Some(0.5),
            turbo: Some((0.7, 32)),
        };
        let s = e.to_string();
        assert!(s.contains("ret:0.50") && s.contains("turbo:0.7/32"));
    }
}
