//! Integration: a controller run against an in-memory recorder produces a
//! well-ordered decision trace with finite predictions.

use mct_core::{Controller, ControllerConfig, ModelKind, Objective};
use mct_telemetry::{Event, Record, RecorderHandle, VecRecorder};
use mct_workloads::Workload;

fn traced_run(model: ModelKind) -> Vec<Record> {
    let rec = VecRecorder::shared();
    let handle: RecorderHandle = rec.clone();
    let mut cfg = ControllerConfig::quick_demo();
    cfg.model = model;
    let mut c = Controller::new(cfg, Objective::paper_default(8.0)).with_recorder(handle);
    let outcome = c.run(&mut Workload::Stream.source(3));
    assert!(outcome.final_metrics.ipc > 0.0);
    let mut guard = rec.lock().expect("recorder lock");
    guard.take_records()
}

#[test]
fn trace_is_well_ordered_and_finite() {
    let records = traced_run(ModelKind::QuadraticLasso);
    assert!(!records.is_empty());

    // Envelope invariants: contiguous sequence, monotone timestamps.
    for pair in records.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1);
        assert!(pair[1].sim_insts >= pair[0].sim_insts);
        assert!(pair[1].wall_us >= pair[0].wall_us);
    }

    let kinds: Vec<&'static str> = records.iter().map(|r| r.event.kind()).collect();
    let first = |k: &str| {
        kinds
            .iter()
            .position(|x| *x == k)
            .unwrap_or_else(|| panic!("missing event {k} in {kinds:?}"))
    };

    // The run opens with the root `run` span (first record of the trace,
    // so `mct profile` coverage spans the whole run), then the initial
    // phase and its baseline measurement; it closes with the completion
    // event, the root span close, and the registry snapshot.
    assert_eq!(kinds.first(), Some(&"span_open"));
    assert!(first("span_open") < first("phase_detected"));
    assert!(first("phase_detected") < first("baseline_measured"));
    assert_eq!(kinds[kinds.len() - 3], "run_completed");
    assert_eq!(kinds[kinds.len() - 2], "span_close");
    assert_eq!(kinds[kinds.len() - 1], "metrics_registry");

    // Spans are balanced: every open is closed by end of run, and the
    // control loop's key phases all appear as named spans.
    let opens = records
        .iter()
        .filter(|r| matches!(r.event, Event::SpanOpen { .. }))
        .count();
    let closes = records
        .iter()
        .filter(|r| matches!(r.event, Event::SpanClose { .. }))
        .count();
    assert_eq!(opens, closes, "unbalanced span open/close");
    let span_names: Vec<&str> = records
        .iter()
        .filter_map(|r| match &r.event {
            Event::SpanOpen { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for expected in [
        "run",
        "warmup",
        "segment",
        "baseline",
        "sampling",
        "sampling.round",
        "sim.window",
        "fit",
        "fit.features",
        "fit.model",
        "predict",
        "decide",
        "testing",
        "health_check",
    ] {
        assert!(
            span_names.contains(&expected),
            "missing span {expected} in {span_names:?}"
        );
    }

    // Pipeline stages appear in causal order:
    // baseline -> sampling -> fit -> select -> health checks -> done.
    assert!(first("baseline_measured") < first("sampling_round"));
    assert!(first("sampling_round") < first("predictor_fitted"));
    assert!(first("predictor_fitted") < first("config_selected"));
    assert!(first("config_selected") < first("run_completed"));
    for (i, k) in kinds.iter().enumerate() {
        if *k == "health_check" {
            assert!(
                i > first("config_selected"),
                "health check before any selection"
            );
        }
    }
    // A stable workload on the quick-demo budget leaves room for at
    // least one periodic health check.
    assert!(
        kinds.contains(&"health_check"),
        "no health check in {kinds:?}"
    );
    assert!(kinds.contains(&"segment_completed"));

    // Every selection carries finite predicted metrics and slack (a
    // fallback's zero sentinel is still finite).
    let mut selections = 0;
    for r in &records {
        if let Event::ConfigSelected {
            predicted,
            lifetime_slack_years,
            config,
            ..
        } = &r.event
        {
            selections += 1;
            assert!(predicted.ipc.is_finite());
            assert!(predicted.lifetime_years.is_finite());
            assert!(predicted.energy_j.is_finite());
            assert!(lifetime_slack_years.is_finite());
            assert!(!config.is_empty());
        }
    }
    assert!(selections >= 1);
}

#[test]
fn registry_snapshot_accounts_for_the_trace() {
    let records = traced_run(ModelKind::QuadraticLasso);
    let kinds: Vec<&'static str> = records.iter().map(|r| r.event.kind()).collect();
    let snapshot = match &records.last().expect("nonempty").event {
        Event::MetricsRegistry { snapshot } => snapshot,
        other => panic!("last event must be the registry snapshot, got {other:?}"),
    };
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    let fitted = kinds.iter().filter(|k| **k == "predictor_fitted").count() as u64;
    assert_eq!(counter("predictor_refits"), fitted);
    assert!(counter("samples_taken") > 0);
    assert_eq!(
        counter("health_checks"),
        kinds.iter().filter(|k| **k == "health_check").count() as u64
    );
    // Stage timers covered every pipeline stage.
    for stage in [
        "warmup", "baseline", "sampling", "fit", "optimize", "testing",
    ] {
        let name = format!("stage.{stage}.wall_us");
        assert!(
            snapshot
                .histograms
                .iter()
                .any(|(n, h)| *n == name && h.count > 0),
            "missing stage timer {name}"
        );
    }
    // Every closed span feeds its per-name duration histogram, rendered
    // with the span label into the snapshot's flat name space.
    for span in ["run", "sampling", "fit", "predict", "decide"] {
        let name = format!("span.wall_us{{span=\"{span}\"}}");
        assert!(
            snapshot
                .histograms
                .iter()
                .any(|(n, h)| *n == name && h.count > 0),
            "missing span duration histogram {name}"
        );
    }
    // Hot-path instrumentation: simulated accesses are counted, simulator
    // throughput and end-to-end decision latency land in histograms.
    assert!(counter("sim.accesses") > 0);
    for name in ["sim.accesses_per_sec", "decision.latency_us"] {
        let hist = snapshot
            .histograms
            .iter()
            .find(|(n, h)| n.as_str() == name && h.count > 0)
            .unwrap_or_else(|| panic!("missing histogram {name}"));
        assert!(hist.1.min > 0.0, "{name} records positive observations");
    }
}

#[test]
fn lasso_model_reports_selected_features() {
    let records = traced_run(ModelKind::QuadraticLasso);
    let fitted = records
        .iter()
        .find_map(|r| match &r.event {
            Event::PredictorFitted {
                model,
                lasso_features,
                cv_r2_ipc,
                ..
            } => Some((model.clone(), lasso_features.clone(), *cv_r2_ipc)),
            _ => None,
        })
        .expect("predictor_fitted present");
    assert!(fitted.0.contains("lasso"));
    assert!(
        !fitted.1.is_empty(),
        "lasso kinds report their kept features"
    );
    for (_, w) in &fitted.1 {
        assert!(w.is_finite());
    }
    if let Some(r2) = fitted.2 {
        assert!(r2.is_finite());
    }
}

#[test]
fn disabled_controller_traces_nothing() {
    // Without a recorder the controller must not fabricate events; attach
    // one afterwards to confirm the default really was disabled (the
    // public constructor is unchanged).
    let mut cfg = ControllerConfig::quick_demo();
    cfg.model = ModelKind::QuadraticLasso;
    let mut c = Controller::new(cfg, Objective::paper_default(8.0));
    let outcome = c.run(&mut Workload::Stream.source(3));
    assert!(outcome.final_metrics.ipc > 0.0);
}
