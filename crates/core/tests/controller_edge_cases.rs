//! Controller integration edge cases beyond the happy path.

use mct_core::{
    Constraint, Controller, ControllerConfig, Metric, ModelKind, NvmConfig, Objective,
    OptimizeTarget,
};
use mct_workloads::{Pattern, PhaseProfile, Profile, Workload, WorkloadSource};

fn quick(model: ModelKind) -> ControllerConfig {
    let mut cfg = ControllerConfig::quick_demo();
    cfg.model = model;
    cfg
}

#[test]
fn infeasible_objective_falls_back_to_baseline() {
    // A one-million-year lifetime floor is unsatisfiable: every segment
    // must fall back to the static baseline (never worse than baseline).
    let mut c = Controller::new(
        quick(ModelKind::QuadraticLasso),
        Objective::paper_default(1e6),
    );
    let outcome = c.run(&mut Workload::Stream.source(2));
    for seg in &outcome.segments {
        assert!(seg.optimization.fell_back);
        assert_eq!(
            seg.optimization.config.without_wear_quota(),
            NvmConfig::static_baseline().without_wear_quota()
        );
    }
}

#[test]
fn learning_over_full_space_including_quota() {
    // Section 6.2.3 ablation: wear quota inside the learned space.
    let mut cfg = quick(ModelKind::QuadraticLasso);
    cfg.exclude_wear_quota = false;
    cfg.quota_fixup = false;
    let c = Controller::new(cfg, Objective::paper_default(8.0));
    assert!(c.space().includes_wear_quota());
    assert!(c.space().len() > 3000);
}

#[test]
fn no_quota_fixup_when_disabled() {
    let mut cfg = quick(ModelKind::QuadraticLasso);
    cfg.quota_fixup = false;
    let mut c = Controller::new(cfg, Objective::paper_default(0.1));
    let outcome = c.run(&mut Workload::Gups.source(3));
    // A 0.1-year floor is trivially satisfied; without fixup the chosen
    // config stays quota-free (the learned space has no quota configs).
    if !outcome
        .segments
        .iter()
        .any(|s| s.health_fallback || s.optimization.fell_back)
    {
        assert!(!outcome.chosen_config.wear_quota);
    }
}

#[test]
fn energy_capped_objective_runs() {
    let objective = Objective {
        constraints: vec![Constraint::AtMost(Metric::Energy, 1.0)],
        primary: OptimizeTarget::Maximize(Metric::Ipc),
        slack: 0.95,
        tiebreak: OptimizeTarget::Maximize(Metric::Lifetime),
    };
    let mut c = Controller::new(quick(ModelKind::QuadraticLasso), objective);
    let outcome = c.run(&mut Workload::Bwaves.source(4));
    assert!(outcome.final_metrics.ipc > 0.0);
}

#[test]
fn gradient_boosting_and_lasso_agree_on_direction() {
    // Both finalists should pick configurations that beat the *default*
    // config's lifetime on a lifetime-constrained workload (gups default
    // lifetime is way under 8y, so staying at default would be a bug).
    let run = |model| {
        let mut c = Controller::new(quick(model), Objective::paper_default(8.0));
        c.run(&mut Workload::Gups.source(5))
    };
    let gb = run(ModelKind::GradientBoosting);
    let ql = run(ModelKind::QuadraticLasso);
    for (name, o) in [("gb", &gb), ("ql", &ql)] {
        assert_ne!(
            o.chosen_config.without_wear_quota(),
            NvmConfig::default_config(),
            "{name} must not keep the all-fast default under an 8y floor"
        );
    }
}

#[test]
fn sampling_rounds_multiply_sampling_insts() {
    let mut cfg1 = quick(ModelKind::QuadraticLasso);
    cfg1.sampling_rounds = 1;
    // Generous budget: the controller sheds cyclic rounds when sampling
    // would exceed ~40% of the total, so give it room to keep both.
    cfg1.total_insts = 2_000_000;
    let mut cfg2 = cfg1.clone();
    cfg2.sampling_rounds = 2;
    let s1 = Controller::new(cfg1, Objective::paper_default(8.0))
        .run(&mut Workload::Milc.source(6))
        .segments[0]
        .sampling_insts;
    let s2 = Controller::new(cfg2, Objective::paper_default(8.0))
        .run(&mut Workload::Milc.source(6))
        .segments[0]
        .sampling_insts;
    assert!(
        s2 as f64 > 1.6 * s1 as f64,
        "two rounds should roughly double sampling work: {s1} vs {s2}"
    );
}

#[test]
fn refit_elision_fires_when_a_phase_recurs() {
    // A coarse A→B→A→… alternation: each boundary is a detector-visible
    // phase change, and every revisit lands within a quarter octave of
    // the fit banked the first time that phase ran. Segment 0 and the
    // first B segment must train; later revisits should elide.
    let phase = |gap_mean: f64, pattern: Pattern| PhaseProfile {
        insts: 800_000,
        gap_mean,
        write_frac: 0.3,
        patterns: vec![(1.0, pattern)],
        burst: None,
    };
    // Both phases must stay memory-visible: a near-silent phase (apki
    // under ~1) would balloon the adaptive sampling unit until one
    // segment's sampling period spans several phases and the intensity
    // estimates smear. Two octaves of separation is plenty for the
    // detector while keeping every segment inside one phase.
    let profile = Profile {
        name: "elision-demo",
        phases: vec![
            phase(
                25.0,
                Pattern::Sequential {
                    region_lines: 1 << 16,
                },
            ),
            phase(
                100.0,
                Pattern::Strided {
                    stride: 8,
                    region_lines: 1 << 18,
                },
            ),
        ],
    };
    let mut cfg = quick(ModelKind::QuadraticLasso);
    cfg.total_insts = 6_000_000;
    // A longer baseline window tightens the intensity estimate the
    // elision gate keys on (15 k insts of a 40-accesses/kinst phase is
    // only ~600 accesses — too noisy for a quarter-octave test).
    cfg.baseline_insts = 60_000;
    // No health checks: every segment ends on a phase boundary with a
    // clean record, isolating the phase-signature half of the gate.
    cfg.health_check_every_windows = 0;
    let mut c = Controller::new(cfg.clone(), Objective::paper_default(0.1));
    let outcome = c.run(&mut WorkloadSource::new(profile.clone(), 11));
    assert!(
        outcome.segments.len() >= 3,
        "alternation should produce several segments, got {}",
        outcome.segments.len()
    );
    assert!(
        !outcome.segments[0].fit_elided,
        "the first segment has nothing banked to reuse"
    );
    assert!(
        outcome.segments.iter().any(|s| s.fit_elided),
        "a revisited phase must reuse its banked fit"
    );

    // And the kill switch: same run with elision disabled never elides.
    cfg.refit_elision = false;
    let mut c = Controller::new(cfg, Objective::paper_default(0.1));
    let outcome = c.run(&mut WorkloadSource::new(profile, 11));
    assert!(outcome.segments.iter().all(|s| !s.fit_elided));
}

#[test]
fn segments_account_all_instructions() {
    let mut c = Controller::new(
        quick(ModelKind::QuadraticLasso),
        Objective::paper_default(8.0),
    );
    let outcome = c.run(&mut Workload::Leslie3d.source(7));
    let seg_total: u64 = outcome
        .segments
        .iter()
        .map(|s| s.sampling_insts + s.testing_insts)
        .sum();
    assert_eq!(
        outcome.sampling_insts + outcome.testing_insts,
        seg_total,
        "per-segment accounting must match totals"
    );
}
