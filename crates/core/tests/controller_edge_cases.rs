//! Controller integration edge cases beyond the happy path.

use mct_core::{
    Constraint, Controller, ControllerConfig, Metric, ModelKind, NvmConfig, Objective,
    OptimizeTarget,
};
use mct_workloads::Workload;

fn quick(model: ModelKind) -> ControllerConfig {
    let mut cfg = ControllerConfig::quick_demo();
    cfg.model = model;
    cfg
}

#[test]
fn infeasible_objective_falls_back_to_baseline() {
    // A one-million-year lifetime floor is unsatisfiable: every segment
    // must fall back to the static baseline (never worse than baseline).
    let mut c = Controller::new(
        quick(ModelKind::QuadraticLasso),
        Objective::paper_default(1e6),
    );
    let outcome = c.run(&mut Workload::Stream.source(2));
    for seg in &outcome.segments {
        assert!(seg.optimization.fell_back);
        assert_eq!(
            seg.optimization.config.without_wear_quota(),
            NvmConfig::static_baseline().without_wear_quota()
        );
    }
}

#[test]
fn learning_over_full_space_including_quota() {
    // Section 6.2.3 ablation: wear quota inside the learned space.
    let mut cfg = quick(ModelKind::QuadraticLasso);
    cfg.exclude_wear_quota = false;
    cfg.quota_fixup = false;
    let c = Controller::new(cfg, Objective::paper_default(8.0));
    assert!(c.space().includes_wear_quota());
    assert!(c.space().len() > 3000);
}

#[test]
fn no_quota_fixup_when_disabled() {
    let mut cfg = quick(ModelKind::QuadraticLasso);
    cfg.quota_fixup = false;
    let mut c = Controller::new(cfg, Objective::paper_default(0.1));
    let outcome = c.run(&mut Workload::Gups.source(3));
    // A 0.1-year floor is trivially satisfied; without fixup the chosen
    // config stays quota-free (the learned space has no quota configs).
    if !outcome
        .segments
        .iter()
        .any(|s| s.health_fallback || s.optimization.fell_back)
    {
        assert!(!outcome.chosen_config.wear_quota);
    }
}

#[test]
fn energy_capped_objective_runs() {
    let objective = Objective {
        constraints: vec![Constraint::AtMost(Metric::Energy, 1.0)],
        primary: OptimizeTarget::Maximize(Metric::Ipc),
        slack: 0.95,
        tiebreak: OptimizeTarget::Maximize(Metric::Lifetime),
    };
    let mut c = Controller::new(quick(ModelKind::QuadraticLasso), objective);
    let outcome = c.run(&mut Workload::Bwaves.source(4));
    assert!(outcome.final_metrics.ipc > 0.0);
}

#[test]
fn gradient_boosting_and_lasso_agree_on_direction() {
    // Both finalists should pick configurations that beat the *default*
    // config's lifetime on a lifetime-constrained workload (gups default
    // lifetime is way under 8y, so staying at default would be a bug).
    let run = |model| {
        let mut c = Controller::new(quick(model), Objective::paper_default(8.0));
        c.run(&mut Workload::Gups.source(5))
    };
    let gb = run(ModelKind::GradientBoosting);
    let ql = run(ModelKind::QuadraticLasso);
    for (name, o) in [("gb", &gb), ("ql", &ql)] {
        assert_ne!(
            o.chosen_config.without_wear_quota(),
            NvmConfig::default_config(),
            "{name} must not keep the all-fast default under an 8y floor"
        );
    }
}

#[test]
fn sampling_rounds_multiply_sampling_insts() {
    let mut cfg1 = quick(ModelKind::QuadraticLasso);
    cfg1.sampling_rounds = 1;
    // Generous budget: the controller sheds cyclic rounds when sampling
    // would exceed ~40% of the total, so give it room to keep both.
    cfg1.total_insts = 2_000_000;
    let mut cfg2 = cfg1.clone();
    cfg2.sampling_rounds = 2;
    let s1 = Controller::new(cfg1, Objective::paper_default(8.0))
        .run(&mut Workload::Milc.source(6))
        .segments[0]
        .sampling_insts;
    let s2 = Controller::new(cfg2, Objective::paper_default(8.0))
        .run(&mut Workload::Milc.source(6))
        .segments[0]
        .sampling_insts;
    assert!(
        s2 as f64 > 1.6 * s1 as f64,
        "two rounds should roughly double sampling work: {s1} vs {s2}"
    );
}

#[test]
fn segments_account_all_instructions() {
    let mut c = Controller::new(
        quick(ModelKind::QuadraticLasso),
        Objective::paper_default(8.0),
    );
    let outcome = c.run(&mut Workload::Leslie3d.source(7));
    let seg_total: u64 = outcome
        .segments
        .iter()
        .map(|s| s.sampling_insts + s.testing_insts)
        .sum();
    assert_eq!(
        outcome.sampling_insts + outcome.testing_insts,
        seg_total,
        "per-segment accounting must match totals"
    );
}
