//! Telemetry overhead: a full quick-demo controller run with the default
//! disabled recorder vs. an attached JSONL trace sink. The disabled path
//! is the zero-cost contract — it must sit within noise of an
//! uninstrumented run; the JSONL path prices the full decision trace.

use criterion::{criterion_group, criterion_main, Criterion};

use mct_core::{Controller, ControllerConfig, ModelKind, Objective};
use mct_telemetry::{JsonlRecorder, VecRecorder};
use mct_workloads::Workload;

fn quick_config() -> ControllerConfig {
    let mut cfg = ControllerConfig::quick_demo();
    cfg.model = ModelKind::QuadraticLasso;
    cfg
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_run");
    group.sample_size(10);

    group.bench_function("null_recorder", |b| {
        b.iter(|| {
            let mut ctl = Controller::new(quick_config(), Objective::paper_default(8.0));
            std::hint::black_box(ctl.run(&mut Workload::Stream.source(3)))
        });
    });

    group.bench_function("vec_recorder", |b| {
        b.iter(|| {
            let rec = VecRecorder::shared();
            let mut ctl = Controller::new(quick_config(), Objective::paper_default(8.0))
                .with_recorder(rec.clone());
            std::hint::black_box(ctl.run(&mut Workload::Stream.source(3)))
        });
    });

    let trace_path = std::env::temp_dir().join(format!("mct-bench-{}.jsonl", std::process::id()));
    group.bench_function("jsonl_recorder", |b| {
        b.iter(|| {
            let recorder = JsonlRecorder::create(&trace_path).expect("trace file");
            let mut ctl = Controller::new(quick_config(), Objective::paper_default(8.0))
                .with_recorder(recorder.handle());
            std::hint::black_box(ctl.run(&mut Workload::Stream.source(3)))
        });
    });
    let _ = std::fs::remove_file(&trace_path);

    group.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);
