//! Telemetry overhead: a full quick-demo controller run (now span-bearing
//! end to end) with the default disabled recorder vs. an attached JSONL
//! trace sink, plus micro-benchmarks of the span and histogram
//! primitives themselves. The disabled path is the zero-cost contract —
//! it must sit within noise of an uninstrumented run; the JSONL path
//! prices the full decision trace including span open/close pairs.

use criterion::{criterion_group, criterion_main, Criterion};

use mct_core::{Controller, ControllerConfig, ModelKind, Objective};
use mct_telemetry::{JsonlRecorder, LogHistogram, Registry, Telemetry, VecRecorder};
use mct_workloads::Workload;

fn quick_config() -> ControllerConfig {
    let mut cfg = ControllerConfig::quick_demo();
    cfg.model = ModelKind::QuadraticLasso;
    cfg
}

fn bench_recorder_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_run");
    group.sample_size(10);

    group.bench_function("null_recorder", |b| {
        b.iter(|| {
            let mut ctl = Controller::new(quick_config(), Objective::paper_default(8.0));
            std::hint::black_box(ctl.run(&mut Workload::Stream.source(3)))
        });
    });

    group.bench_function("vec_recorder", |b| {
        b.iter(|| {
            let rec = VecRecorder::shared();
            let mut ctl = Controller::new(quick_config(), Objective::paper_default(8.0))
                .with_recorder(rec.clone());
            std::hint::black_box(ctl.run(&mut Workload::Stream.source(3)))
        });
    });

    let trace_path = std::env::temp_dir().join(format!("mct-bench-{}.jsonl", std::process::id()));
    group.bench_function("jsonl_recorder", |b| {
        b.iter(|| {
            let recorder = JsonlRecorder::create(&trace_path).expect("trace file");
            let mut ctl = Controller::new(quick_config(), Objective::paper_default(8.0))
                .with_recorder(recorder.handle());
            std::hint::black_box(ctl.run(&mut Workload::Stream.source(3)))
        });
    });
    let _ = std::fs::remove_file(&trace_path);

    group.finish();
}

fn bench_span_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_span");

    // The disabled span is the contract the control loop relies on: one
    // branch in, one branch out, no clock read, no allocation.
    group.bench_function("disabled_span_open_close", |b| {
        let mut t = Telemetry::disabled();
        b.iter(|| {
            let s = t.span("bench", 0);
            t.close_span(s, 0);
        });
    });

    // Enabled span pair against an in-memory sink, drained per batch so
    // the vector does not grow across the measurement.
    group.bench_function("vec_span_open_close_x1000", |b| {
        b.iter(|| {
            let rec = VecRecorder::shared();
            let mut t = Telemetry::attached(rec.clone());
            for _ in 0..1000 {
                let s = t.span("bench", 0);
                t.close_span(s, 0);
            }
            std::hint::black_box(t.registry_snapshot());
        });
    });

    group.bench_function("log_histogram_observe", |b| {
        let mut h = LogHistogram::default();
        let mut v = 1.0f64;
        b.iter(|| {
            v = (v * 1.61803) % 1e9 + 1.0;
            h.observe(std::hint::black_box(v));
        });
    });

    group.bench_function("registry_observe_labeled", |b| {
        let mut reg = Registry::default();
        b.iter(|| {
            reg.observe_with(
                "span.wall_us",
                &[("span", "fit")],
                std::hint::black_box(42.0),
            );
        });
    });

    group.finish();
}

criterion_group!(benches, bench_recorder_overhead, bench_span_primitives);
criterion_main!(benches);
