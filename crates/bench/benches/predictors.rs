//! Table 7's "computation overhead" column: per-model cost of fitting on
//! ~80 runtime samples and predicting the whole learnable space.
//!
//! The paper reports (on a 12-core i7): linear ~1 ms, quadratic 3–8 ms,
//! gradient boosting ~112 ms, hierarchical Bayesian ~8,000 ms. Absolute
//! numbers differ on other hardware; the *ordering* is the reproducible
//! claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mct_bench::{synthetic_corpus, synthetic_samples};
use mct_core::{ConfigSpace, MetricsPredictor, ModelKind};

fn bench_fit_predict(c: &mut Criterion) {
    let samples = synthetic_samples(80, 42);
    let space = ConfigSpace::without_wear_quota();
    let corpus = synthetic_corpus(4);

    let mut group = c.benchmark_group("table7_fit_and_predict_all");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for kind in ModelKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut p = MetricsPredictor::new(kind);
                    if kind.needs_offline_data() {
                        p = p.with_corpus(corpus.clone());
                    }
                    p.fit(&samples, None);
                    std::hint::black_box(p.predict_all(&space));
                });
            },
        );
    }
    group.finish();
}

fn bench_fit_only(c: &mut Criterion) {
    let samples = synthetic_samples(80, 42);
    let corpus = synthetic_corpus(4);

    let mut group = c.benchmark_group("table7_fit_only");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for kind in [
        ModelKind::Linear,
        ModelKind::LinearLasso,
        ModelKind::Quadratic,
        ModelKind::QuadraticLasso,
        ModelKind::GradientBoosting,
        ModelKind::Hierarchical,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut p = MetricsPredictor::new(kind);
                    if kind.needs_offline_data() {
                        p = p.with_corpus(corpus.clone());
                    }
                    p.fit(&samples, None);
                    std::hint::black_box(&p);
                });
            },
        );
    }
    group.finish();
}

fn bench_convergence_sample_sizes(c: &mut Criterion) {
    // Fit cost vs training-set size for the two finalists (Figure 2's
    // x-axis, cost dimension).
    let mut group = c.benchmark_group("fit_cost_vs_samples");
    group.sample_size(10);
    for n in [20usize, 80, 160] {
        let samples = synthetic_samples(n, 7);
        for kind in [ModelKind::QuadraticLasso, ModelKind::GradientBoosting] {
            group.bench_with_input(BenchmarkId::new(kind.label(), n), &samples, |b, samples| {
                b.iter(|| {
                    let mut p = MetricsPredictor::new(kind);
                    p.fit(samples, None);
                    std::hint::black_box(&p);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_predict,
    bench_fit_only,
    bench_convergence_sample_sizes
);
criterion_main!(benches);
