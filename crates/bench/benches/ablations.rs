//! Ablation benches for the design choices DESIGN.md calls out:
//! normalization, quadratic expansion, eager-scan cost, and the
//! cancellation path in the controller.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mct_bench::synthetic_samples;
use mct_core::{MetricsPredictor, ModelKind};
use mct_ml::quadratic_expand;
use mct_sim::cache::{Cache, CacheConfig};
use mct_sim::system::{System, SystemConfig};
use mct_sim::trace::AccessKind;
use mct_sim::MellowPolicy;
use mct_workloads::Workload;

fn bench_normalization_ablation(c: &mut Criterion) {
    // Fitting with vs without baseline normalization: the accuracy story
    // is in figure2; here we confirm the cost is identical (normalization
    // must be free enough to always leave on).
    let samples = synthetic_samples(80, 3);
    let baseline = samples[0].1;
    let mut group = c.benchmark_group("normalization");
    group.sample_size(10);
    for (name, base) in [("without", None), ("with", Some(baseline))] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &base, |b, base| {
            b.iter(|| {
                let mut p = MetricsPredictor::new(ModelKind::QuadraticLasso);
                p.fit(&samples, *base);
                std::hint::black_box(&p);
            });
        });
    }
    group.finish();
}

fn bench_quadratic_expand(c: &mut Criterion) {
    let row: Vec<f64> = (1..=10).map(f64::from).collect();
    c.bench_function("quadratic_expand_10_to_65", |b| {
        b.iter(|| std::hint::black_box(quadratic_expand(&row)));
    });
}

fn bench_eager_scan(c: &mut Criterion) {
    // Cost of the LLC eager-candidate scan at different thresholds.
    let mut llc = Cache::new(CacheConfig::llc());
    for i in 0..100_000u64 {
        let kind = if i % 2 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        llc.access(i % 40_000, kind);
    }
    let mut group = c.benchmark_group("eager_scan");
    for th in [4u32, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(th), &th, |b, &th| {
            b.iter(|| {
                let mut l = llc.clone();
                let mut offered = 0u32;
                l.scan_eager(th, 64, |_| {
                    offered += 1;
                    true
                });
                std::hint::black_box(offered)
            });
        });
    }
    group.finish();
}

fn bench_cancellation_ablation(c: &mut Criterion) {
    // Simulation cost with cancellation on vs off (extra reissues).
    const INSTS: u64 = 150_000;
    let mut group = c.benchmark_group("cancellation");
    group.sample_size(10);
    let on = MellowPolicy {
        slow_latency: 4.0,
        cancellation: mct_sim::policy::CancellationMode::Both,
        bank_aware_threshold: Some(4),
        ..MellowPolicy::default_fast()
    };
    let off = MellowPolicy {
        slow_latency: 4.0,
        cancellation: mct_sim::policy::CancellationMode::None,
        bank_aware_threshold: Some(4),
        ..MellowPolicy::default_fast()
    };
    for (name, policy) in [("on", on), ("off", off)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter(|| {
                let mut sys = System::new(SystemConfig::default(), policy.clone());
                let mut src = Workload::Milc.source(5);
                sys.run_window(&mut src, INSTS);
                std::hint::black_box(sys.finalize())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_normalization_ablation,
    bench_quadratic_expand,
    bench_eager_scan,
    bench_cancellation_ablation
);
criterion_main!(benches);
