//! Framework-component costs: space enumeration, sampling, phase
//! detection, and objective selection — everything MCT adds at runtime
//! besides model fitting (the paper claims "negligible runtime overhead").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use mct_bench::synthetic_truth;
use mct_core::{
    sampling::{feature_based_samples, random_samples},
    ConfigSpace, Objective, PhaseDetector, PhaseDetectorConfig,
};

fn bench_space(c: &mut Criterion) {
    c.bench_function("config_space_enumerate_full", |b| {
        b.iter(|| std::hint::black_box(ConfigSpace::full(8.0)));
    });
    c.bench_function("config_space_enumerate_no_quota", |b| {
        b.iter(|| std::hint::black_box(ConfigSpace::without_wear_quota()));
    });
}

fn bench_sampling(c: &mut Criterion) {
    let space = ConfigSpace::without_wear_quota();
    c.bench_function("feature_based_samples", |b| {
        b.iter(|| std::hint::black_box(feature_based_samples(&space, 7)));
    });
    c.bench_function("random_samples_77", |b| {
        b.iter(|| std::hint::black_box(random_samples(&space, 77, 7)));
    });
}

fn bench_phase_detector(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_detector");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("observe_1000_windows", |b| {
        b.iter(|| {
            let mut d = PhaseDetector::new(PhaseDetectorConfig::default());
            for i in 0..1000u32 {
                let w = 100.0 + f64::from(i % 7) + if i > 500 { 50.0 } else { 0.0 };
                std::hint::black_box(d.observe(w));
            }
            d.phases_detected()
        });
    });
    group.finish();
}

fn bench_objective_select(c: &mut Criterion) {
    let space = ConfigSpace::full(8.0);
    let predictions: Vec<_> = space.iter().map(synthetic_truth).collect();
    let objective = Objective::paper_default(8.0);
    let mut group = c.benchmark_group("objective");
    group.throughput(Throughput::Elements(predictions.len() as u64));
    group.bench_function("select_over_full_space", |b| {
        b.iter(|| std::hint::black_box(objective.select(&predictions)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_space,
    bench_sampling,
    bench_phase_detector,
    bench_objective_select
);
criterion_main!(benches);
