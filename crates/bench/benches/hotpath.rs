//! The three hot paths this repo's perf work targets: the raw controller
//! event loop, the lock-free sweep engine, and batched whole-space
//! prediction. The `hotpath` binary records the same paths as wall-clock
//! JSON; these Criterion benches track them with proper statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mct_core::{ConfigSpace, MetricsPredictor, ModelKind, NvmConfig};
use mct_experiments::{par_map, sweep_with_threads, Scale, EXPERIMENT_SEED};
use mct_sim::energy::EnergyModel;
use mct_sim::time::{Duration, Time};
use mct_sim::wear::WearModel;
use mct_sim::{MellowPolicy, MemConfig, MemoryController};
use mct_workloads::Workload;

/// Mixed read/write issue loop against a raw controller (the event-loop
/// pattern the CPU model drives).
fn bench_event_loop(c: &mut Criterion) {
    const N: u64 = 20_000;
    let mut group = c.benchmark_group("hotpath_event_loop");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N + N / 3));
    group.bench_function("mixed_reads_writes", |b| {
        b.iter(|| {
            let mut mem = MemoryController::new(
                MemConfig::default(),
                MellowPolicy::default_fast(),
                WearModel::default(),
                EnergyModel::default(),
            );
            let mut now = Time::ZERO;
            let mut pending = Vec::new();
            for i in 0..N {
                now += Duration(10_000);
                let line = (i * 977) % 65_536;
                loop {
                    match mem.issue_read(line, now) {
                        Some(id) => {
                            pending.push(id);
                            break;
                        }
                        None => now = now.max(mem.wait_read_space()),
                    }
                }
                if i % 3 == 0 {
                    let wline = (i * 1531) % 65_536;
                    while !mem.issue_write(wline, now) {
                        now = now.max(mem.wait_write_space());
                    }
                }
                if pending.len() >= 8 {
                    let oldest = pending.remove(0);
                    now = now.max(mem.wait_read(oldest));
                    pending.retain(|&id| mem.take_completed_read(id, now).is_none());
                }
            }
            std::hint::black_box(mem.drain_all())
        });
    });
    group.finish();
}

/// The lock-free fan-out primitive itself, and a small end-to-end sweep.
fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sweep");
    group.sample_size(10);
    // par_map scheduling overhead on trivial work.
    let items: Vec<u64> = (0..4096).collect();
    for threads in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("par_map_4096_trivial", threads),
            &threads,
            |b, &threads| {
                b.iter(|| std::hint::black_box(par_map(&items, threads, |&x| x.wrapping_mul(31))));
            },
        );
    }
    // End-to-end: warm rig + 8 configs through the sweep engine.
    let space = ConfigSpace::without_wear_quota();
    let stride = (space.len() / 8).max(1);
    let configs: Vec<NvmConfig> = space
        .configs()
        .iter()
        .step_by(stride)
        .take(8)
        .copied()
        .collect();
    group.bench_function("sweep_gups_8_configs", |b| {
        b.iter(|| {
            std::hint::black_box(sweep_with_threads(
                Workload::Gups,
                &configs,
                Scale::Quick,
                EXPERIMENT_SEED,
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            ))
        });
    });
    group.finish();
}

/// Batched whole-space prediction (2,030 configurations, three targets).
fn bench_predict_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_predict_all");
    group.sample_size(10);
    let space = ConfigSpace::without_wear_quota();
    group.throughput(Throughput::Elements(space.len() as u64));
    let samples = mct_bench::synthetic_samples(84, 11);
    for kind in [ModelKind::GradientBoosting, ModelKind::QuadraticLasso] {
        let mut p = MetricsPredictor::new(kind);
        p.fit(&samples, None);
        let _ = p.predict_all(&space); // warm the space's feature cache
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &p,
            |b, p| {
                b.iter(|| std::hint::black_box(p.predict_all(&space)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_loop, bench_sweep, bench_predict_all);
criterion_main!(benches);
