//! Pipeline-scale primitives: the work-stealing scheduler's dispatch
//! overhead, grain-key hashing, the JSONL grain store's record/reopen
//! round trip, and the cost of cloning a warmed rig snapshot (what every
//! figure pays per measurement instead of a full re-warm).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mct_core::NvmConfig;
use mct_experiments::cache::{fnv1a64, grain_key, GrainStore};
use mct_experiments::{run_grains, shared_rig, Scale, EXPERIMENT_SEED};
use mct_workloads::Workload;

/// Scheduler dispatch overhead on trivial grains: what run_grains costs
/// when the work itself is free, at 1 worker (inline path) and 8
/// (deal + steal machinery).
fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_scheduler");
    group.sample_size(10);
    let items: Vec<u64> = (0..4096).collect();
    group.throughput(Throughput::Elements(items.len() as u64));
    for workers in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("run_grains_4096_trivial", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    std::hint::black_box(run_grains(&items, workers, |&x| x.wrapping_mul(31)))
                });
            },
        );
    }
    group.finish();
}

/// Cache-key derivation: raw FNV-1a over 64 bytes, and a full grain key
/// (workload + seed + budget + 7-dim config) — both sit on every cache
/// lookup in the pipeline.
fn bench_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_keys");
    group.sample_size(10);
    let payload = [0xA5u8; 64];
    group.bench_function("fnv1a64_64B", |b| {
        b.iter(|| std::hint::black_box(fnv1a64(std::hint::black_box(&payload))));
    });
    let cfg = NvmConfig::default_config();
    group.bench_function("grain_key", |b| {
        b.iter(|| {
            std::hint::black_box(grain_key(
                Workload::Gups,
                EXPERIMENT_SEED,
                std::hint::black_box(1_000_000),
                &cfg,
            ))
        });
    });
    group.finish();
}

/// GrainStore persistence: appending 256 records to a fresh store, and
/// reopening (parse + validate) a 256-line store — the cold-start cost a
/// resumed pipeline pays per store file.
fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_store");
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("mct_bench_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    let metrics = mct_sim::stats::Metrics {
        ipc: 1.234_567_890_123,
        lifetime_years: 8.765_432_1,
        energy_j: 0.001_234_5,
    };

    group.throughput(Throughput::Elements(256));
    group.bench_function("record_256", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let path = dir.join(format!("record_{round}.jsonl"));
            let store = GrainStore::open(path.clone());
            for k in 0..256u64 {
                store.record(k, metrics);
            }
            let _ = std::fs::remove_file(path);
        });
    });

    let reopen_path = dir.join("reopen.jsonl");
    let seed_store = GrainStore::open(reopen_path.clone());
    for k in 0..256u64 {
        seed_store.record(k, metrics);
    }
    drop(seed_store);
    group.bench_function("reopen_256", |b| {
        b.iter(|| std::hint::black_box(GrainStore::open(reopen_path.clone()).len()));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Warm-snapshot reuse: the per-grain unit cost — clone the warmed
/// system off the shared pool and run one detailed measurement. The
/// one-time warmup the pool amortizes away happens outside the timing
/// loop; clone-only time is tracked separately by the `clone_us`
/// pipeline counter.
fn bench_warm_rig(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_warm_rig");
    group.sample_size(10);
    let budget = Workload::Gups.detailed_insts(Scale::Smoke.detailed_factor());
    let cell = shared_rig(Workload::Gups, EXPERIMENT_SEED, budget);
    let _ = cell.rig(); // force the one-time warmup outside the timing loop
    group.bench_function("measure_from_warm_snapshot_gups_smoke", |b| {
        b.iter(|| {
            let rig = cell.rig();
            std::hint::black_box(rig.measure(&NvmConfig::default_config()))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_keys,
    bench_store,
    bench_warm_rig
);
criterion_main!(benches);
