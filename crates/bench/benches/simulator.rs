//! Simulator throughput: what makes the brute-force "ideal" sweeps (the
//! paper's 300,000 compute-hours) tractable in this reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mct_core::NvmConfig;
use mct_sim::system::{System, SystemConfig};
use mct_sim::time::Time;
use mct_sim::{MellowPolicy, MemConfig, MemoryController};
use mct_workloads::Workload;

fn bench_system_run(c: &mut Criterion) {
    const INSTS: u64 = 200_000;
    let mut group = c.benchmark_group("system_run");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTS));
    for w in [Workload::Stream, Workload::Gups, Workload::Zeusmp] {
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, &w| {
            b.iter(|| {
                let mut sys = System::new(SystemConfig::default(), MellowPolicy::default_fast());
                let mut src = w.source(1);
                sys.run_window(&mut src, INSTS);
                std::hint::black_box(sys.finalize())
            });
        });
    }
    group.finish();
}

fn bench_policy_cost(c: &mut Criterion) {
    // Per-policy simulation cost: slow writes mean more queueing work.
    const INSTS: u64 = 200_000;
    let mut group = c.benchmark_group("system_run_policies");
    group.sample_size(10);
    let policies = [
        ("default", NvmConfig::default_config()),
        ("static_baseline", NvmConfig::static_baseline()),
        (
            "all_slow_4x",
            NvmConfig {
                fast_latency: 4.0,
                slow_latency: 4.0,
                ..NvmConfig::default_config()
            },
        ),
    ];
    for (name, cfg) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sys = System::new(SystemConfig::default(), cfg.to_policy());
                let mut src = Workload::Stream.source(1);
                sys.run_window(&mut src, INSTS);
                std::hint::black_box(sys.finalize())
            });
        });
    }
    group.finish();
}

fn bench_controller_micro(c: &mut Criterion) {
    // Raw memory-controller event throughput.
    let mut group = c.benchmark_group("memory_controller");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("issue_10k_reads_round_robin", |b| {
        b.iter(|| {
            let mut m = MemoryController::new(
                MemConfig::default(),
                MellowPolicy::default_fast(),
                mct_sim::wear::WearModel::default(),
                mct_sim::energy::EnergyModel::default(),
            );
            let mut ids = Vec::with_capacity(64);
            for i in 0..10_000u64 {
                let t = Time::from_ns(i as f64 * 10.0);
                match m.issue_read(i, t) {
                    Some(id) => ids.push(id),
                    None => {
                        let _ = m.wait_read_space();
                    }
                }
            }
            std::hint::black_box(m.drain_all())
        });
    });
    group.bench_function("issue_10k_writes_with_drain", |b| {
        b.iter(|| {
            let mut m = MemoryController::new(
                MemConfig::default(),
                MellowPolicy::static_baseline(),
                mct_sim::wear::WearModel::default(),
                mct_sim::energy::EnergyModel::default(),
            );
            for i in 0..10_000u64 {
                let t = Time::from_ns(i as f64 * 20.0);
                if !m.issue_write(i, t) {
                    let _ = m.wait_write_space();
                    let _ = m.issue_write(i, m.now());
                }
            }
            std::hint::black_box(m.drain_all())
        });
    });
    group.finish();
}

fn bench_warm_clone(c: &mut Criterion) {
    // The sweep engine's key amortization: cloning a warmed system.
    let mut sys = System::new(SystemConfig::default(), MellowPolicy::default_fast());
    let mut src = Workload::Lbm.source(1);
    sys.warmup(&mut src, Workload::Lbm.warmup_insts());
    c.bench_function("warmed_system_clone", |b| {
        b.iter(|| std::hint::black_box(sys.clone()));
    });
}

criterion_group!(
    benches,
    bench_system_run,
    bench_policy_cost,
    bench_controller_micro,
    bench_warm_clone
);
criterion_main!(benches);
