//! The three training paths this PR's perf work targets: the k-fold
//! quad-lasso regularization path (warm vs cold start), the presorted
//! GBRT fit at several worker counts, and the controller's full
//! predictor refit. The `fitpath` binary records the same paths as
//! wall-clock JSON; these Criterion benches track them with proper
//! statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mct_core::{MetricsPredictor, ModelKind};
use mct_ml::{
    lasso_path_fits, quadratic_expand, Dataset, GradientBoosting, GradientBoostingParams,
    LassoFoldCache, Regressor, TreeParams,
};

/// Controller-shaped quad-lasso training set (15 columns after
/// expansion).
fn quad_lasso_data(n: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let a = (i % 13) as f64;
            let b = ((i * 7) % 11) as f64;
            let c = ((i * 3) % 17) as f64 / 4.0;
            let d = ((i * 31) % 23) as f64 / 8.0;
            quadratic_expand(&[a, b, c, d])
        })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let a = (i % 13) as f64;
            let c = ((i * 3) % 17) as f64 / 4.0;
            3.0 * a - 1.5 * a * c + 0.25 * c * c + ((i * 5) % 7) as f64 * 0.01
        })
        .collect();
    Dataset::from_rows(rows, y)
}

fn gbrt_data(n: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..8)
                .map(|j| ((i * (2 * j + 3)) % (17 + j)) as f64)
                .collect()
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| (r[0] * r[4]).sin() * 4.0 + r[1] * 0.3 - r[6] + (r[2] - r[7]).abs())
        .collect();
    Dataset::from_rows(rows, y)
}

/// Full 30-lambda 5-fold path: warm starts (production) vs cold starts
/// (the differential-suite reference), both over the same fold cache,
/// plus the cache build itself.
fn bench_lasso_path(c: &mut Criterion) {
    let data = quad_lasso_data(84);
    let mut group = c.benchmark_group("fitpath_quad_lasso");
    group.bench_function("fold_cache_build", |b| {
        b.iter(|| std::hint::black_box(LassoFoldCache::new(&data, 5)));
    });
    let cache = LassoFoldCache::new(&data, 5);
    for (label, warm) in [("warm_start", true), ("cold_start", false)] {
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(lasso_path_fits(&cache, 1e-3, 1e2, 30, warm)));
        });
    }
    group.finish();
}

/// One full boosting fit; worker counts share one fitted result shape
/// (the trees are bit-identical — see `tests/fit_differential.rs`), so
/// this measures pure scheduling overhead/benefit.
fn bench_gbrt_fit(c: &mut Criterion) {
    let data = gbrt_data(1024);
    let mut group = c.benchmark_group("fitpath_gbrt_fit");
    group.sample_size(20);
    for workers in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut model = GradientBoosting::new(GradientBoostingParams {
                        stages: 80,
                        learning_rate: 0.1,
                        subsample: 0.8,
                        tree: TreeParams {
                            max_depth: 4,
                            min_leaf: 2,
                        },
                        seed: 7,
                        workers,
                    });
                    model.fit(&data);
                    std::hint::black_box(model.n_stages())
                });
            },
        );
    }
    group.finish();
}

/// The controller's per-segment refit: three per-objective fits from 84
/// samples (what refit elision skips when the phase signature repeats).
fn bench_controller_refit(c: &mut Criterion) {
    let samples = mct_bench::synthetic_samples(84, 11);
    let mut group = c.benchmark_group("fitpath_controller_refit");
    for kind in [ModelKind::QuadraticLasso, ModelKind::GradientBoosting] {
        group.bench_with_input(
            BenchmarkId::new("model", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut p = MetricsPredictor::new(kind);
                    p.fit(&samples, None);
                    std::hint::black_box(p)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lasso_path,
    bench_gbrt_fit,
    bench_controller_refit
);
criterion_main!(benches);
