//! # mct-bench — benchmark support
//!
//! The Criterion benchmarks live in `benches/`; this library crate hosts
//! the shared fixtures they use (synthetic sample sets, pre-built spaces)
//! so each bench measures the operation, not fixture construction.

#![warn(missing_docs)]

use mct_core::{ConfigSpace, NvmConfig};
use mct_sim::stats::Metrics;

/// A smooth synthetic ground-truth used to generate predictor training
/// data of the right shape (mirrors the sweep landscape qualitatively).
#[must_use]
pub fn synthetic_truth(c: &NvmConfig) -> Metrics {
    let slowdown = 0.3 * (c.fast_latency - 1.0) + 0.15 * (c.slow_latency - 1.0);
    let cancel = if c.slow_cancellation { 0.05 } else { 0.0 };
    Metrics {
        ipc: (1.2 - slowdown + cancel).max(0.1),
        lifetime_years: 2.0 * c.slow_latency * c.slow_latency + 0.5 * c.fast_latency,
        energy_j: 5e-3 * (1.0 + slowdown),
    }
}

/// `n` training samples over the quota-free space with synthetic targets.
#[must_use]
pub fn synthetic_samples(n: usize, seed: u64) -> Vec<(NvmConfig, Metrics)> {
    let space = ConfigSpace::without_wear_quota();
    mct_core::sampling::random_samples(&space, n, seed)
        .into_iter()
        .map(|c| (c, synthetic_truth(&c)))
        .collect()
}

/// Per-application corpora for the offline/hierarchical predictors.
#[must_use]
pub fn synthetic_corpus(apps: usize) -> Vec<Vec<(NvmConfig, Metrics)>> {
    let space = ConfigSpace::without_wear_quota();
    (0..apps)
        .map(|a| {
            let f = 0.5 + a as f64 * 0.25;
            space
                .iter()
                .map(|c| {
                    let mut m = synthetic_truth(c);
                    m.ipc *= f;
                    m.lifetime_years *= f;
                    m.energy_j *= f;
                    (*c, m)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_produce_valid_data() {
        let s = synthetic_samples(20, 1);
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|(_, m)| m.ipc > 0.0 && m.lifetime_years > 0.0));
        assert_eq!(synthetic_corpus(2).len(), 2);
    }
}
