//! Emit `BENCH_fitpath.json`: wall-clock numbers for the three training
//! paths (quad-lasso CV path, GBRT fit, controller predictor refit).
//!
//! Run with `cargo run --release -p mct-bench --bin fitpath [-- [--json] [out.json]]`.
//! With `--json` the report goes to stdout only (progress lines stay on
//! stderr) and no file is written unless a path is also given — the mode
//! CI and scripts consume. The binary deliberately uses only API surface
//! that exists on both sides of the training overhaul (`lasso_path`,
//! `GradientBoosting` via struct-update defaults, `MetricsPredictor`)
//! so the exact same source measures pre- and post-optimization builds
//! and BENCH_fitpath.json records a like-for-like A/B; the `machine`
//! block records the host so numbers are never compared across
//! different boxes by accident.

use std::time::Instant;

use mct_core::{MetricsPredictor, ModelKind};
use mct_ml::{
    lasso_path, quadratic_expand, Dataset, GradientBoosting, GradientBoostingParams, Regressor,
    TreeParams,
};

/// Controller-shaped quad-lasso training set: `n` sampled configs, four
/// base knobs, quadratic expansion (15 columns), nonlinear target.
fn quad_lasso_data(n: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let a = (i % 13) as f64;
            let b = ((i * 7) % 11) as f64;
            let c = ((i * 3) % 17) as f64 / 4.0;
            let d = ((i * 31) % 23) as f64 / 8.0;
            quadratic_expand(&[a, b, c, d])
        })
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let a = (i % 13) as f64;
            let c = ((i * 3) % 17) as f64 / 4.0;
            3.0 * a - 1.5 * a * c + 0.25 * c * c + ((i * 5) % 7) as f64 * 0.01
        })
        .collect();
    Dataset::from_rows(rows, y)
}

/// GBRT-shaped training set: `n` rows, 8 features, rough interactions.
fn gbrt_data(n: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..8)
                .map(|j| ((i * (2 * j + 3)) % (17 + j)) as f64)
                .collect()
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| (r[0] * r[4]).sin() * 4.0 + r[1] * 0.3 - r[6] + (r[2] - r[7]).abs())
        .collect();
    Dataset::from_rows(rows, y)
}

/// Best-of-`iters` wall time (ms) for a full k-fold lasso path over the
/// log-spaced lambda grid the controller sweeps.
fn quad_lasso_path_ms(data: &Dataset, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let path = lasso_path(data, 1e-3, 1e2, 30, 5);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(path.len(), 30);
        // Fold into a checksum so the fits cannot be elided.
        let checksum: f64 = path.iter().map(|p| p.cv_r2).sum();
        assert!(checksum.is_finite());
        best = best.min(ms);
    }
    best
}

/// Best-of-`iters` wall time (ms) for one full GBRT fit.
fn gbrt_fit_ms(data: &Dataset, stages: usize, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let mut model = GradientBoosting::new(GradientBoostingParams {
            stages,
            learning_rate: 0.1,
            subsample: 0.8,
            tree: TreeParams {
                max_depth: 4,
                min_leaf: 2,
            },
            seed: 7,
            ..Default::default()
        });
        let start = Instant::now();
        model.fit(data);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(model.predict(&data.rows()[0]).is_finite());
        best = best.min(ms);
    }
    best
}

/// Best-of-`iters` wall time (ms) for a controller predictor refit (the
/// three per-objective fits the segment loop pays on every retrain).
fn refit_ms(kind: ModelKind, iters: usize) -> f64 {
    let samples = mct_bench::synthetic_samples(84, 11);
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let mut p = MetricsPredictor::new(kind);
        let start = Instant::now();
        p.fit(&samples, None);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let mut json_only = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json_only = true;
        } else {
            out_path = Some(arg);
        }
    }

    eprintln!("measuring quad-lasso CV path...");
    let lasso_data = quad_lasso_data(84);
    let lasso_warm = quad_lasso_path_ms(&lasso_data, 2);
    let lasso_ms = quad_lasso_path_ms(&lasso_data, 5).min(lasso_warm);

    eprintln!("measuring GBRT fit...");
    let tree_data = gbrt_data(1024);
    let gbrt_warm = gbrt_fit_ms(&tree_data, 80, 1);
    let gbrt_ms = gbrt_fit_ms(&tree_data, 80, 3).min(gbrt_warm);

    eprintln!("measuring controller refits...");
    let refit_gbrt_ms = refit_ms(ModelKind::GradientBoosting, 3);
    let refit_lasso_ms = refit_ms(ModelKind::QuadraticLasso, 3);

    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"machine\": {{\n    \"nproc\": {nproc},\n    \"os\": \"{}\",\n    \
         \"arch\": \"{}\"\n  }},\n  \
         \"quad_lasso_rows\": {},\n  \"quad_lasso_lambdas\": 30,\n  \
         \"quad_lasso_folds\": 5,\n  \"quad_lasso_cv_path_ms\": {lasso_ms:.3},\n  \
         \"gbrt_rows\": {},\n  \"gbrt_stages\": 80,\n  \"gbrt_fit_ms\": {gbrt_ms:.3},\n  \
         \"refit_gbrt_ms\": {refit_gbrt_ms:.3},\n  \
         \"refit_quad_lasso_ms\": {refit_lasso_ms:.3}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        lasso_data.len(),
        tree_data.len(),
    );
    print!("{json}");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write bench json");
            eprintln!("wrote {path}");
        }
        None if !json_only => {
            std::fs::write("BENCH_fitpath.json", &json).expect("write bench json");
            eprintln!("wrote BENCH_fitpath.json");
        }
        None => {}
    }
}
