//! Emit `BENCH_hotpath.json`: wall-clock numbers for the three hot paths
//! (simulator event loop, sweep engine, batched prediction).
//!
//! Run with `cargo run --release -p mct-bench --bin hotpath [-- [--json] [out.json]]`.
//! With `--json` the report goes to stdout only (progress lines stay on
//! stderr) and no file is written unless a path is also given — the mode
//! CI and scripts consume. The same binary measures pre- and
//! post-optimization builds so perf PRs can record a like-for-like
//! trajectory; the `machine` block records the host so numbers are never
//! compared across different boxes by accident.

use std::time::Instant;

use mct_core::{ConfigSpace, MetricsPredictor, ModelKind, NvmConfig};
use mct_experiments::runner::EXPERIMENT_SEED;
use mct_experiments::{sweep, Scale};
use mct_sim::energy::EnergyModel;
use mct_sim::mem::{MemConfig, MemoryController};
use mct_sim::policy::MellowPolicy;
use mct_sim::time::Time;
use mct_sim::wear::WearModel;
use mct_workloads::Workload;

/// Mixed read/write issue loop against a raw controller; returns
/// accesses/sec over `n` reads + `n/3` writes.
fn event_loop_accesses_per_sec(n: u64) -> f64 {
    let mut mem = MemoryController::new(
        MemConfig::default(),
        MellowPolicy::default_fast(),
        WearModel::default(),
        EnergyModel::default(),
    );
    let mut accesses = 0u64;
    let start = Instant::now();
    let mut now = Time::ZERO;
    let mut pending = Vec::new();
    for i in 0..n {
        now += mct_sim::time::Duration(10_000);
        let line = (i * 977) % 65_536;
        loop {
            match mem.issue_read(line, now) {
                Some(id) => {
                    pending.push(id);
                    break;
                }
                None => now = now.max(mem.wait_read_space()),
            }
        }
        accesses += 1;
        if i % 3 == 0 {
            let wline = (i * 1531) % 65_536;
            while !mem.issue_write(wline, now) {
                now = now.max(mem.wait_write_space());
            }
            accesses += 1;
        }
        // Reap once the window grows, like the CPU model does.
        if pending.len() >= 8 {
            let oldest = pending.remove(0);
            now = now.max(mem.wait_read(oldest));
            pending.retain(|&id| mem.take_completed_read(id, now).is_none());
        }
    }
    for id in pending {
        now = now.max(mem.wait_read(id));
    }
    mem.drain_all();
    accesses as f64 / start.elapsed().as_secs_f64()
}

/// Sweep wall time (ms) over `n_configs` strided out of the full space.
fn sweep_wall_ms(n_configs: usize) -> (usize, f64) {
    let space = ConfigSpace::without_wear_quota();
    let stride = (space.len() / n_configs).max(1);
    let configs: Vec<NvmConfig> = space.configs().iter().step_by(stride).copied().collect();
    let configs = &configs[..n_configs.min(configs.len())];
    let start = Instant::now();
    let metrics = sweep(Workload::Gups, configs, Scale::Quick, EXPERIMENT_SEED);
    assert_eq!(metrics.len(), configs.len());
    // Fold the results into a checksum so the work cannot be elided.
    let checksum: f64 = metrics.iter().map(|m| m.ipc).sum();
    assert!(checksum > 0.0);
    (configs.len(), start.elapsed().as_secs_f64() * 1e3)
}

/// `predict_all` latency (ms, best of `iters`) for one model kind.
fn predict_all_ms(kind: ModelKind, space: &ConfigSpace, iters: usize) -> f64 {
    let samples = mct_bench::synthetic_samples(84, 11);
    let mut p = MetricsPredictor::new(kind);
    p.fit(&samples, None);
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        let out = p.predict_all(space);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.len(), space.len());
        best = best.min(ms);
    }
    best
}

fn main() {
    let mut json_only = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json_only = true;
        } else {
            out_path = Some(arg);
        }
    }

    eprintln!("measuring event loop...");
    let ev_warm = event_loop_accesses_per_sec(50_000);
    let ev = event_loop_accesses_per_sec(200_000).max(ev_warm);

    eprintln!("measuring sweep...");
    let (n_sweep, sweep_ms) = sweep_wall_ms(64);

    eprintln!("measuring predict_all...");
    let space = ConfigSpace::without_wear_quota();
    let gbrt_ms = predict_all_ms(ModelKind::GradientBoosting, &space, 5);
    let lasso_ms = predict_all_ms(ModelKind::QuadraticLasso, &space, 5);

    let nproc = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"machine\": {{\n    \"nproc\": {nproc},\n    \"os\": \"{}\",\n    \
         \"arch\": \"{}\"\n  }},\n  \
         \"event_loop_accesses_per_sec\": {ev:.0},\n  \
         \"sweep_configs\": {n_sweep},\n  \"sweep_wall_ms\": {sweep_ms:.1},\n  \
         \"predict_all_configs\": {},\n  \"predict_all_gbrt_ms\": {gbrt_ms:.3},\n  \
         \"predict_all_quad_lasso_ms\": {lasso_ms:.3}\n}}\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        space.len()
    );
    print!("{json}");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write bench json");
            eprintln!("wrote {path}");
        }
        None if !json_only => {
            std::fs::write("BENCH_hotpath.json", &json).expect("write bench json");
            eprintln!("wrote BENCH_hotpath.json");
        }
        None => {}
    }
}
