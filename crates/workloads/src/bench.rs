//! The ten paper benchmarks as calibrated profiles.
//!
//! Parameters are calibrated (see `crates/experiments`, `calibrate` bin)
//! so that under the paper's *default* configuration the lifetime and IPC
//! landscape matches Figure 7's shape: most workloads miss the 8-year
//! target (lbm/stream/gups/libquantum badly), `zeusmp` passes comfortably,
//! and per-application heterogeneity is strong.

use crate::mix::Mix;
use crate::patterns::Pattern;
use crate::profile::{BurstSpec, PhaseProfile, Profile};
use crate::source::WorkloadSource;

/// The paper's evaluation workloads (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// SPEC CPU2006 `lbm`: fluid dynamics; streaming stencil, write-heavy,
    /// strongly bursty.
    Lbm,
    /// SPEC CPU2006 `leslie3d`: turbulence; strided sweeps, moderate writes.
    Leslie3d,
    /// SPEC CPU2006 `zeusmp`: astrophysics; cache-friendly, light memory
    /// traffic (the one workload whose default lifetime exceeds 8 years).
    Zeusmp,
    /// SPEC CPU2006 `GemsFDTD`: electromagnetics; large strided sweeps.
    GemsFdtd,
    /// SPEC CPU2006 `milc`: lattice QCD; scattered accesses, bursty.
    Milc,
    /// SPEC CPU2006 `bwaves`: fluid dynamics; broad streaming, read-heavy.
    Bwaves,
    /// SPEC CPU2006 `libquantum`: quantum simulation; extremely regular
    /// streaming with strong bursts.
    Libquantum,
    /// SPLASH-2 `ocean`: alternating compute/communicate coarse phases
    /// (the Figure 6 phase-detection subject).
    Ocean,
    /// GUPS microbenchmark: uniform random updates over a huge table.
    Gups,
    /// STREAM microbenchmark: pure sequential copy/triad bandwidth.
    Stream,
}

impl Workload {
    /// All ten workloads in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Workload; 10] {
        [
            Workload::Lbm,
            Workload::Leslie3d,
            Workload::Zeusmp,
            Workload::GemsFdtd,
            Workload::Milc,
            Workload::Bwaves,
            Workload::Libquantum,
            Workload::Ocean,
            Workload::Gups,
            Workload::Stream,
        ]
    }

    /// The benchmark's conventional name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Lbm => "lbm",
            Workload::Leslie3d => "leslie3d",
            Workload::Zeusmp => "zeusmp",
            Workload::GemsFdtd => "GemsFDTD",
            Workload::Milc => "milc",
            Workload::Bwaves => "bwaves",
            Workload::Libquantum => "libquantum",
            Workload::Ocean => "ocean",
            Workload::Gups => "gups",
            Workload::Stream => "stream",
        }
    }

    /// Parse a workload from its conventional name (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::all()
            .into_iter()
            .find(|w| w.name().eq_ignore_ascii_case(name))
    }

    /// The calibrated profile.
    #[must_use]
    pub fn profile(self) -> Profile {
        match self {
            Workload::Lbm => Profile {
                name: "lbm",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 40.0,
                    write_frac: 0.45,
                    patterns: vec![
                        (
                            0.75,
                            Pattern::Sequential {
                                region_lines: 1 << 19,
                            },
                        ),
                        (
                            0.15,
                            Pattern::Strided {
                                stride: 16,
                                region_lines: 1 << 19,
                            },
                        ),
                        (0.10, Pattern::Hot { hot_lines: 8 << 10 }),
                    ],
                    burst: Some(BurstSpec {
                        burst_insts: 600_000,
                        quiet_insts: 200_000,
                        quiet_gap_factor: 6.0,
                    }),
                }],
            },
            Workload::Leslie3d => Profile {
                name: "leslie3d",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 60.0,
                    write_frac: 0.35,
                    patterns: vec![
                        (
                            0.5,
                            Pattern::Strided {
                                stride: 8,
                                region_lines: 1 << 18,
                            },
                        ),
                        (
                            0.3,
                            Pattern::Sequential {
                                region_lines: 1 << 18,
                            },
                        ),
                        (
                            0.2,
                            Pattern::Hot {
                                hot_lines: 16 << 10,
                            },
                        ),
                    ],
                    burst: None,
                }],
            },
            Workload::Zeusmp => Profile {
                name: "zeusmp",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 260.0,
                    write_frac: 0.25,
                    patterns: vec![
                        (
                            0.6,
                            Pattern::Hot {
                                hot_lines: 24 << 10,
                            },
                        ),
                        (
                            0.4,
                            Pattern::Strided {
                                stride: 4,
                                region_lines: 1 << 17,
                            },
                        ),
                    ],
                    burst: None,
                }],
            },
            Workload::GemsFdtd => Profile {
                name: "GemsFDTD",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 56.0,
                    write_frac: 0.36,
                    patterns: vec![
                        (
                            0.55,
                            Pattern::Strided {
                                stride: 32,
                                region_lines: 1 << 19,
                            },
                        ),
                        (
                            0.30,
                            Pattern::Sequential {
                                region_lines: 1 << 18,
                            },
                        ),
                        (
                            0.15,
                            Pattern::Hot {
                                hot_lines: 12 << 10,
                            },
                        ),
                    ],
                    burst: None,
                }],
            },
            Workload::Milc => Profile {
                name: "milc",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 65.0,
                    write_frac: 0.35,
                    patterns: vec![
                        (
                            0.6,
                            Pattern::Random {
                                region_lines: 1 << 21,
                            },
                        ),
                        (
                            0.25,
                            Pattern::Sequential {
                                region_lines: 1 << 18,
                            },
                        ),
                        (0.15, Pattern::Hot { hot_lines: 8 << 10 }),
                    ],
                    burst: Some(BurstSpec {
                        burst_insts: 400_000,
                        quiet_insts: 240_000,
                        quiet_gap_factor: 4.0,
                    }),
                }],
            },
            Workload::Bwaves => Profile {
                name: "bwaves",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 80.0,
                    write_frac: 0.25,
                    patterns: vec![
                        (
                            0.7,
                            Pattern::Sequential {
                                region_lines: 1 << 19,
                            },
                        ),
                        (
                            0.3,
                            Pattern::Strided {
                                stride: 64,
                                region_lines: 1 << 19,
                            },
                        ),
                    ],
                    burst: None,
                }],
            },
            Workload::Libquantum => Profile {
                name: "libquantum",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 45.0,
                    write_frac: 0.30,
                    patterns: vec![(
                        1.0,
                        Pattern::Sequential {
                            region_lines: 1 << 20,
                        },
                    )],
                    burst: Some(BurstSpec {
                        burst_insts: 700_000,
                        quiet_insts: 350_000,
                        quiet_gap_factor: 8.0,
                    }),
                }],
            },
            Workload::Ocean => Profile {
                name: "ocean",
                phases: vec![
                    // Communicate/update phase: memory-intensive sweeps.
                    PhaseProfile {
                        insts: 2_000_000,
                        gap_mean: 50.0,
                        write_frac: 0.40,
                        patterns: vec![
                            (
                                0.7,
                                Pattern::Sequential {
                                    region_lines: 1 << 18,
                                },
                            ),
                            (
                                0.3,
                                Pattern::Strided {
                                    stride: 8,
                                    region_lines: 1 << 18,
                                },
                            ),
                        ],
                        burst: None,
                    },
                    // Compute phase: cache-resident stencil work.
                    PhaseProfile {
                        insts: 2_000_000,
                        gap_mean: 350.0,
                        write_frac: 0.15,
                        patterns: vec![(
                            1.0,
                            Pattern::Hot {
                                hot_lines: 20 << 10,
                            },
                        )],
                        burst: None,
                    },
                ],
            },
            Workload::Gups => Profile {
                name: "gups",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 35.0,
                    write_frac: 0.50,
                    patterns: vec![(
                        1.0,
                        Pattern::Random {
                            region_lines: 1 << 24,
                        },
                    )],
                    burst: None,
                }],
            },
            Workload::Stream => Profile {
                name: "stream",
                phases: vec![PhaseProfile {
                    insts: u64::MAX,
                    gap_mean: 30.0,
                    write_frac: 0.33,
                    patterns: vec![(
                        1.0,
                        Pattern::Sequential {
                            region_lines: 1 << 20,
                        },
                    )],
                    burst: None,
                }],
            },
        }
    }

    /// Build a seeded access source for this workload.
    #[must_use]
    pub fn source(self, seed: u64) -> WorkloadSource {
        WorkloadSource::new(self.profile(), seed ^ self.seed_salt())
    }

    /// Recommended warmup budget in instructions: enough for ~40 k LLC
    /// accesses so the cache reaches steady state (scaled stand-in for the
    /// paper's 6 B-instruction warmup).
    #[must_use]
    pub fn warmup_insts(self) -> u64 {
        let per_kinst = self.profile().nominal_accesses_per_kinst();
        ((40_000.0 / per_kinst) * 1e3) as u64
    }

    /// Recommended detailed-simulation budget in instructions at unit
    /// scale: enough for ~60 k LLC accesses of measurement (scaled
    /// stand-in for the paper's 2 B detailed window). Multiply by a scale
    /// factor for higher-fidelity runs.
    #[must_use]
    pub fn detailed_insts(self, scale: f64) -> u64 {
        let per_kinst = self.profile().nominal_accesses_per_kinst();
        (((60_000.0 / per_kinst) * 1e3) * scale.max(0.05)) as u64
    }

    /// Per-workload seed salt so mixes with the same base seed don't run
    /// correlated streams.
    fn seed_salt(self) -> u64 {
        (self as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The multi-program mixes of Table 11.
    #[must_use]
    pub fn mixes() -> [Mix; 6] {
        Mix::all()
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_sim::trace::AccessSource;

    #[test]
    fn all_profiles_valid() {
        for w in Workload::all() {
            w.profile().assert_valid();
        }
    }

    #[test]
    fn names_round_trip() {
        for w in Workload::all() {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("GEMSfdtd"), Some(Workload::GemsFdtd));
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn intensity_ordering_matches_design() {
        // zeusmp must be the least memory-intensive; stream/gups the most.
        let rate = |w: Workload| w.profile().nominal_accesses_per_kinst();
        for w in Workload::all() {
            if w != Workload::Zeusmp {
                assert!(
                    rate(w) > rate(Workload::Zeusmp),
                    "{w} should be more intensive than zeusmp"
                );
            }
        }
        assert!(rate(Workload::Stream) > rate(Workload::Leslie3d));
    }

    #[test]
    fn sources_are_deterministic_and_distinct() {
        let mut a = Workload::Lbm.source(9);
        let mut b = Workload::Lbm.source(9);
        let mut c = Workload::Milc.source(9);
        let mut same_ac = 0;
        for _ in 0..200 {
            let ea = a.next_access();
            assert_eq!(ea, b.next_access());
            if ea == c.next_access() {
                same_ac += 1;
            }
        }
        assert!(same_ac < 20, "different workloads should differ");
    }

    #[test]
    fn ocean_has_two_phases() {
        let p = Workload::Ocean.profile();
        assert_eq!(p.phases.len(), 2);
        assert!(p.phases[0].gap_mean * 3.0 < p.phases[1].gap_mean);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Workload::GemsFdtd.to_string(), "GemsFDTD");
    }

    #[test]
    fn budget_helpers_scale_with_intensity() {
        // Less intensive workloads need more instructions to accumulate
        // the same number of LLC accesses.
        assert!(Workload::Zeusmp.warmup_insts() > Workload::Stream.warmup_insts());
        assert!(Workload::Zeusmp.detailed_insts(1.0) > Workload::Stream.detailed_insts(1.0));
        // The detailed budget scales linearly with the factor.
        let one = Workload::Lbm.detailed_insts(1.0) as f64;
        let third = Workload::Lbm.detailed_insts(0.3) as f64;
        assert!((third / one - 0.3).abs() < 0.01);
        // The scale factor is floored to keep budgets meaningful.
        assert!(Workload::Lbm.detailed_insts(0.0) > 0);
    }

    #[test]
    fn warmup_targets_forty_thousand_accesses() {
        for w in Workload::all() {
            let accesses = w.warmup_insts() as f64 * w.profile().nominal_accesses_per_kinst() / 1e3;
            assert!(
                (accesses - 40_000.0).abs() < 2_000.0,
                "{w}: warmup covers {accesses:.0} accesses"
            );
        }
    }
}
