//! Workload profiles: the calibrated description a source is built from.

use serde::{Deserialize, Serialize};

use crate::patterns::Pattern;

/// Burst modulation: the workload alternates between bursty periods
/// (denser memory accesses) and quiet periods.
///
/// The paper observes burst lengths of at least ~10M instructions in its
/// benchmarks (Section 5.2); profiles here scale that to the reproduction's
/// shorter detailed windows while keeping bursts much longer than a
/// fine-grained sampling unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Burst length in instructions.
    pub burst_insts: u64,
    /// Quiet length in instructions.
    pub quiet_insts: u64,
    /// Gap multiplier during quiet periods (> 1: sparser accesses).
    pub quiet_gap_factor: f64,
}

/// One coarse phase of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Phase length in instructions (the source cycles through phases).
    pub insts: u64,
    /// Mean instructions between LLC-input accesses.
    pub gap_mean: f64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Weighted address patterns (weights need not sum to 1).
    pub patterns: Vec<(f64, Pattern)>,
    /// Optional burst modulation.
    pub burst: Option<BurstSpec>,
}

/// A complete workload profile: one or more phases, cycled forever.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Workload name (paper benchmark it stands in for).
    pub name: &'static str,
    /// The coarse phases.
    pub phases: Vec<PhaseProfile>,
}

impl Profile {
    /// Validate structural invariants.
    ///
    /// # Panics
    /// Panics on an empty phase list, non-positive gaps, out-of-range
    /// write fractions or empty pattern mixtures — profile constants are
    /// code, not user input, so violations are programming errors.
    pub fn assert_valid(&self) {
        assert!(
            !self.phases.is_empty(),
            "{}: profile needs phases",
            self.name
        );
        for (i, ph) in self.phases.iter().enumerate() {
            assert!(ph.insts > 0, "{} phase {i}: zero length", self.name);
            assert!(ph.gap_mean >= 1.0, "{} phase {i}: gap_mean < 1", self.name);
            assert!(
                (0.0..=1.0).contains(&ph.write_frac),
                "{} phase {i}: bad write_frac",
                self.name
            );
            assert!(
                !ph.patterns.is_empty(),
                "{} phase {i}: no patterns",
                self.name
            );
            let total: f64 = ph.patterns.iter().map(|(w, _)| *w).sum();
            assert!(total > 0.0, "{} phase {i}: zero pattern weight", self.name);
            if let Some(b) = ph.burst {
                assert!(
                    b.burst_insts > 0 && b.quiet_insts > 0,
                    "{} phase {i}: bad burst",
                    self.name
                );
                assert!(
                    b.quiet_gap_factor >= 1.0,
                    "{} phase {i}: quiet factor < 1",
                    self.name
                );
            }
        }
    }

    /// Nominal LLC-input accesses per kilo-instruction, averaged over the
    /// phase cycle (ignoring burst modulation).
    #[must_use]
    pub fn nominal_accesses_per_kinst(&self) -> f64 {
        let total_insts: u64 = self.phases.iter().map(|p| p.insts).sum();
        let total_accesses: f64 = self
            .phases
            .iter()
            .map(|p| p.insts as f64 / p.gap_mean)
            .sum();
        total_accesses / (total_insts as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_phase() -> PhaseProfile {
        PhaseProfile {
            insts: 1_000_000,
            gap_mean: 50.0,
            write_frac: 0.3,
            patterns: vec![(
                1.0,
                Pattern::Sequential {
                    region_lines: 1 << 16,
                },
            )],
            burst: None,
        }
    }

    #[test]
    fn valid_profile_passes() {
        let p = Profile {
            name: "t",
            phases: vec![simple_phase()],
        };
        p.assert_valid();
        assert!((p.nominal_accesses_per_kinst() - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_profile_panics() {
        Profile {
            name: "t",
            phases: vec![],
        }
        .assert_valid();
    }

    #[test]
    #[should_panic(expected = "bad write_frac")]
    fn bad_write_frac_panics() {
        let mut ph = simple_phase();
        ph.write_frac = 1.5;
        Profile {
            name: "t",
            phases: vec![ph],
        }
        .assert_valid();
    }

    #[test]
    #[should_panic(expected = "quiet factor")]
    fn bad_burst_panics() {
        let mut ph = simple_phase();
        ph.burst = Some(BurstSpec {
            burst_insts: 10,
            quiet_insts: 10,
            quiet_gap_factor: 0.5,
        });
        Profile {
            name: "t",
            phases: vec![ph],
        }
        .assert_valid();
    }

    #[test]
    fn multi_phase_rate_averages() {
        let mut fast = simple_phase();
        fast.gap_mean = 25.0;
        let p = Profile {
            name: "t",
            phases: vec![simple_phase(), fast],
        };
        // 20/kinst and 40/kinst over equal lengths -> 30/kinst.
        assert!((p.nominal_accesses_per_kinst() - 30.0).abs() < 1e-9);
    }
}
