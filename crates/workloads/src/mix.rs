//! Multi-program workload mixes (paper Table 11).

use crate::bench::Workload;
use crate::source::WorkloadSource;

/// One of the paper's six 4-program mixes (Table 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mix {
    /// lbm, libquantum, stream, ocean.
    Mix1,
    /// leslie3d, bwaves, stream, ocean.
    Mix2,
    /// GemsFDTD, milc, zeusmp, bwaves.
    Mix3,
    /// lbm, leslie3d, zeusmp, GemsFDTD.
    Mix4,
    /// GemsFDTD, milc, bwaves, libquantum.
    Mix5,
    /// libquantum, bwaves, stream, ocean.
    Mix6,
}

impl Mix {
    /// All six mixes in Table 11 order.
    #[must_use]
    pub fn all() -> [Mix; 6] {
        [
            Mix::Mix1,
            Mix::Mix2,
            Mix::Mix3,
            Mix::Mix4,
            Mix::Mix5,
            Mix::Mix6,
        ]
    }

    /// Conventional name ("mix1".."mix6").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mix::Mix1 => "mix1",
            Mix::Mix2 => "mix2",
            Mix::Mix3 => "mix3",
            Mix::Mix4 => "mix4",
            Mix::Mix5 => "mix5",
            Mix::Mix6 => "mix6",
        }
    }

    /// The four member workloads (Table 11).
    #[must_use]
    pub fn members(self) -> [Workload; 4] {
        match self {
            Mix::Mix1 => [
                Workload::Lbm,
                Workload::Libquantum,
                Workload::Stream,
                Workload::Ocean,
            ],
            Mix::Mix2 => [
                Workload::Leslie3d,
                Workload::Bwaves,
                Workload::Stream,
                Workload::Ocean,
            ],
            Mix::Mix3 => [
                Workload::GemsFdtd,
                Workload::Milc,
                Workload::Zeusmp,
                Workload::Bwaves,
            ],
            Mix::Mix4 => [
                Workload::Lbm,
                Workload::Leslie3d,
                Workload::Zeusmp,
                Workload::GemsFdtd,
            ],
            Mix::Mix5 => [
                Workload::GemsFdtd,
                Workload::Milc,
                Workload::Bwaves,
                Workload::Libquantum,
            ],
            Mix::Mix6 => [
                Workload::Libquantum,
                Workload::Bwaves,
                Workload::Stream,
                Workload::Ocean,
            ],
        }
    }

    /// Build the four per-core sources with a shared base seed.
    #[must_use]
    pub fn sources(self, seed: u64) -> Vec<WorkloadSource> {
        self.members().into_iter().map(|w| w.source(seed)).collect()
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_mixes_of_four() {
        for m in Mix::all() {
            assert_eq!(m.members().len(), 4);
            assert_eq!(m.sources(1).len(), 4);
        }
    }

    #[test]
    fn table11_membership_spotcheck() {
        assert_eq!(
            Mix::Mix4.members(),
            [
                Workload::Lbm,
                Workload::Leslie3d,
                Workload::Zeusmp,
                Workload::GemsFdtd
            ]
        );
        assert!(Mix::Mix3.members().contains(&Workload::Zeusmp));
    }

    #[test]
    fn display_names() {
        assert_eq!(Mix::Mix1.to_string(), "mix1");
        assert_eq!(Mix::Mix6.to_string(), "mix6");
    }
}
