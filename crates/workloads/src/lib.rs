//! # mct-workloads — calibrated synthetic workload generators
//!
//! The paper evaluates MCT on seven SPEC CPU2006 memory-intensive
//! benchmarks (*lbm, leslie3d, zeusmp, GemsFDTD, milc, bwaves,
//! libquantum*), *ocean* from SPLASH-2, and two microbenchmarks (*gups*,
//! *stream*). None of those binaries or traces are available here, so this
//! crate provides parameterized synthetic stand-ins: each benchmark is a
//! [`Profile`] describing its memory intensity, read/write mix, address
//! patterns, burstiness and coarse phase structure, from which a seeded,
//! deterministic [`WorkloadSource`] generates an LLC-input access stream
//! (see `mct_sim::trace`).
//!
//! Calibration goals (what makes the reproduction faithful):
//!
//! * under the paper's *default* configuration most workloads miss the
//!   8-year lifetime target while `zeusmp` passes (Figure 7);
//! * per-application heterogeneity is strong enough that optimal
//!   configurations differ (Table 5);
//! * memory-intensive workloads exhibit bursts much longer than a
//!   fine-grained sampling unit (Section 5.2);
//! * `ocean` has dramatic coarse-grained phases (Figure 6).
//!
//! ```
//! use mct_workloads::Workload;
//! use mct_sim::trace::AccessSource;
//!
//! let mut src = Workload::Lbm.source(42);
//! let ev = src.next_access();
//! assert!(ev.gap_insts > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bench;
mod mix;
mod patterns;
mod profile;
mod source;

pub use bench::Workload;
pub use mix::Mix;
pub use patterns::{Pattern, PatternState};
pub use profile::{BurstSpec, PhaseProfile, Profile};
pub use source::WorkloadSource;
