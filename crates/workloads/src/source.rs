//! Turning a [`Profile`] into a deterministic access stream.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mct_sim::trace::{AccessKind, AccessSource, TraceEvent};

use crate::patterns::{layout, PatternState};
use crate::profile::Profile;

/// A seeded, deterministic generator of LLC-input accesses for a profile.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    profile: Profile,
    rng: ChaCha8Rng,
    /// Per-phase pattern states (cursors persist across phase revisits,
    /// like real benchmark data structures do).
    phase_patterns: Vec<Vec<PatternState>>,
    /// Cumulative pattern-weight tables per phase.
    phase_weights: Vec<Vec<f64>>,
    phase_idx: usize,
    insts_into_phase: u64,
    total_insts: u64,
}

impl WorkloadSource {
    /// Build a source for `profile` with the given RNG seed.
    ///
    /// # Panics
    /// Panics if the profile is structurally invalid.
    #[must_use]
    pub fn new(profile: Profile, seed: u64) -> WorkloadSource {
        profile.assert_valid();
        let phase_patterns: Vec<Vec<PatternState>> = profile
            .phases
            .iter()
            .map(|ph| layout(&ph.patterns.iter().map(|(_, p)| *p).collect::<Vec<_>>()))
            .collect();
        let phase_weights: Vec<Vec<f64>> = profile
            .phases
            .iter()
            .map(|ph| {
                let mut acc = 0.0;
                ph.patterns
                    .iter()
                    .map(|(w, _)| {
                        acc += w;
                        acc
                    })
                    .collect()
            })
            .collect();
        WorkloadSource {
            rng: ChaCha8Rng::seed_from_u64(seed),
            phase_patterns,
            phase_weights,
            phase_idx: 0,
            insts_into_phase: 0,
            total_insts: 0,
            profile,
        }
    }

    /// The underlying profile.
    #[must_use]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Total instructions this source has emitted gaps for.
    #[must_use]
    pub fn emitted_insts(&self) -> u64 {
        self.total_insts
    }

    /// Index of the current coarse phase.
    #[must_use]
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }

    fn advance_phase(&mut self, gap: u64) {
        self.insts_into_phase += gap;
        self.total_insts += gap;
        let len = self.profile.phases[self.phase_idx].insts;
        if self.insts_into_phase >= len {
            self.insts_into_phase -= len;
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
        }
    }
}

impl AccessSource for WorkloadSource {
    fn next_access(&mut self) -> TraceEvent {
        let phase = &self.profile.phases[self.phase_idx];
        // Burst modulation: position within the burst/quiet cycle.
        let gap_mean = match phase.burst {
            Some(b) => {
                let cycle = b.burst_insts + b.quiet_insts;
                let pos = self.insts_into_phase % cycle;
                if pos < b.burst_insts {
                    phase.gap_mean
                } else {
                    phase.gap_mean * b.quiet_gap_factor
                }
            }
            None => phase.gap_mean,
        };
        // Geometric-ish gap with the requested mean (long-tailed like real
        // inter-miss distances). `1 - u` keeps ln() finite.
        let u: f64 = self.rng.gen::<f64>();
        let gap = (-(gap_mean) * (1.0 - u).ln()).round().max(1.0) as u64;

        // Pick a pattern by weight.
        let weights = &self.phase_weights[self.phase_idx];
        let total = *weights.last().expect("nonempty patterns");
        let draw = self.rng.gen::<f64>() * total;
        let pi = weights
            .iter()
            .position(|&w| draw < w)
            .unwrap_or(weights.len() - 1);
        let line = self.phase_patterns[self.phase_idx][pi].next_line(&mut self.rng);

        let kind = if self.rng.gen::<f64>() < phase.write_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.advance_phase(gap);
        TraceEvent {
            gap_insts: gap,
            kind,
            line,
        }
    }

    fn mean_gap_hint(&self) -> Option<f64> {
        Some(
            self.profile.phases.iter().map(|p| p.gap_mean).sum::<f64>()
                / self.profile.phases.len() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::Pattern;
    use crate::profile::{BurstSpec, PhaseProfile};

    fn profile() -> Profile {
        Profile {
            name: "test",
            phases: vec![
                PhaseProfile {
                    insts: 100_000,
                    gap_mean: 50.0,
                    write_frac: 0.4,
                    patterns: vec![
                        (
                            0.7,
                            Pattern::Sequential {
                                region_lines: 1 << 14,
                            },
                        ),
                        (
                            0.3,
                            Pattern::Random {
                                region_lines: 1 << 16,
                            },
                        ),
                    ],
                    burst: None,
                },
                PhaseProfile {
                    insts: 100_000,
                    gap_mean: 200.0,
                    write_frac: 0.1,
                    patterns: vec![(1.0, Pattern::Hot { hot_lines: 4096 })],
                    burst: None,
                },
            ],
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WorkloadSource::new(profile(), 1);
        let mut b = WorkloadSource::new(profile(), 1);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_seed_differs() {
        let mut a = WorkloadSource::new(profile(), 1);
        let mut b = WorkloadSource::new(profile(), 2);
        let same = (0..100)
            .filter(|_| a.next_access() == b.next_access())
            .count();
        assert!(same < 10);
    }

    #[test]
    fn gap_mean_approximately_honored() {
        let mut s = WorkloadSource::new(
            Profile {
                name: "t",
                phases: vec![profile().phases[0].clone()],
            },
            3,
        );
        let n = 20_000;
        let total: u64 = (0..n).map(|_| s.next_access().gap_insts).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 50.0).abs() < 5.0, "mean={mean}");
    }

    #[test]
    fn write_fraction_approximately_honored() {
        let mut s = WorkloadSource::new(
            Profile {
                name: "t",
                phases: vec![profile().phases[0].clone()],
            },
            4,
        );
        let writes = (0..10_000)
            .filter(|_| s.next_access().kind.is_write())
            .count();
        assert!((writes as f64 / 10_000.0 - 0.4).abs() < 0.05);
    }

    #[test]
    fn phases_cycle() {
        let mut s = WorkloadSource::new(profile(), 5);
        assert_eq!(s.current_phase(), 0);
        while s.emitted_insts() < 100_000 {
            s.next_access();
        }
        assert_eq!(s.current_phase(), 1);
        while s.emitted_insts() < 200_000 {
            s.next_access();
        }
        assert_eq!(s.current_phase(), 0, "phases wrap around");
    }

    #[test]
    fn burst_modulation_changes_density() {
        let bursty = Profile {
            name: "b",
            phases: vec![PhaseProfile {
                insts: u64::MAX,
                gap_mean: 20.0,
                write_frac: 0.0,
                patterns: vec![(
                    1.0,
                    Pattern::Sequential {
                        region_lines: 1 << 20,
                    },
                )],
                burst: Some(BurstSpec {
                    burst_insts: 50_000,
                    quiet_insts: 50_000,
                    quiet_gap_factor: 10.0,
                }),
            }],
        };
        let mut s = WorkloadSource::new(bursty, 6);
        // Count accesses landing in the first burst vs first quiet window.
        let mut in_burst = 0;
        let mut in_quiet = 0;
        loop {
            let pos = s.emitted_insts();
            if pos >= 100_000 {
                break;
            }
            let _ = s.next_access();
            if pos < 50_000 {
                in_burst += 1;
            } else {
                in_quiet += 1;
            }
        }
        assert!(
            in_burst as f64 > 3.0 * in_quiet as f64,
            "burst={in_burst} quiet={in_quiet}"
        );
    }

    #[test]
    fn mean_gap_hint_present() {
        let s = WorkloadSource::new(profile(), 7);
        assert_eq!(s.mean_gap_hint(), Some(125.0));
    }
}
