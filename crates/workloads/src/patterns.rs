//! Address-pattern primitives.
//!
//! Each [`Pattern`] describes a family of line-address sequences; a
//! [`PatternState`] holds the per-instance cursor. Profiles mix several
//! patterns with weights to shape LLC hit rates, spatial bank spread and
//! dirty-line behaviour.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An address-sequence family, in cache-line units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Pure sequential walk over `region_lines`, wrapping.
    Sequential {
        /// Region size in lines.
        region_lines: u64,
    },
    /// Strided walk: `stride` lines per step over `region_lines`.
    Strided {
        /// Step in lines.
        stride: u64,
        /// Region size in lines.
        region_lines: u64,
    },
    /// Uniform random over `region_lines` (GUPS-like).
    Random {
        /// Region size in lines.
        region_lines: u64,
    },
    /// Zipf-ish hot set: most accesses reuse `hot_lines`, generating LLC
    /// hits; keeps temporal locality knobs separate from region size.
    Hot {
        /// Number of distinct hot lines.
        hot_lines: u64,
    },
}

impl Pattern {
    /// The base line-address offset that keeps this pattern's region
    /// disjoint from other patterns in the same profile slot.
    fn region_span(self) -> u64 {
        match self {
            Pattern::Sequential { region_lines }
            | Pattern::Strided { region_lines, .. }
            | Pattern::Random { region_lines } => region_lines,
            Pattern::Hot { hot_lines } => hot_lines,
        }
    }
}

/// Runtime cursor for one pattern instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternState {
    pattern: Pattern,
    /// Base line offset (regions of co-resident patterns are disjoint).
    base: u64,
    cursor: u64,
}

impl PatternState {
    /// Instantiate `pattern` at the given base offset.
    ///
    /// # Panics
    /// Panics if the pattern's region is empty or a stride is zero.
    #[must_use]
    pub fn new(pattern: Pattern, base: u64) -> PatternState {
        match pattern {
            Pattern::Sequential { region_lines } | Pattern::Random { region_lines } => {
                assert!(region_lines > 0, "region must be nonempty");
            }
            Pattern::Strided {
                stride,
                region_lines,
            } => {
                assert!(region_lines > 0, "region must be nonempty");
                assert!(stride > 0, "stride must be nonzero");
            }
            Pattern::Hot { hot_lines } => assert!(hot_lines > 0, "hot set must be nonempty"),
        }
        PatternState {
            pattern,
            base,
            cursor: 0,
        }
    }

    /// The pattern this state instantiates.
    #[must_use]
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// Produce the next line address.
    pub fn next_line<R: Rng>(&mut self, rng: &mut R) -> u64 {
        match self.pattern {
            Pattern::Sequential { region_lines } => {
                let line = self.base + self.cursor;
                self.cursor = (self.cursor + 1) % region_lines;
                line
            }
            Pattern::Strided {
                stride,
                region_lines,
            } => {
                let line = self.base + self.cursor;
                self.cursor = (self.cursor + stride) % region_lines;
                line
            }
            Pattern::Random { region_lines } => self.base + rng.gen_range(0..region_lines),
            Pattern::Hot { hot_lines } => {
                // An 80/20-style skew: square a uniform draw so low indices
                // (the hottest lines) dominate.
                let u: f64 = rng.gen::<f64>();
                let idx = ((u * u) * hot_lines as f64) as u64;
                self.base + idx.min(hot_lines - 1)
            }
        }
    }

    /// Lines spanned by this instance (for base-offset layout).
    #[must_use]
    pub fn span(&self) -> u64 {
        self.pattern.region_span()
    }
}

/// Lay out pattern instances at disjoint base offsets.
#[must_use]
pub fn layout(patterns: &[Pattern]) -> Vec<PatternState> {
    let mut base = 0;
    patterns
        .iter()
        .map(|&p| {
            let st = PatternState::new(p, base);
            // Round each region up to a large alignment so different
            // patterns never alias.
            base += st.span().next_power_of_two().max(1 << 20);
            st
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn sequential_wraps() {
        let mut st = PatternState::new(Pattern::Sequential { region_lines: 3 }, 100);
        let mut r = rng();
        let seq: Vec<u64> = (0..5).map(|_| st.next_line(&mut r)).collect();
        assert_eq!(seq, vec![100, 101, 102, 100, 101]);
    }

    #[test]
    fn strided_steps() {
        let mut st = PatternState::new(
            Pattern::Strided {
                stride: 4,
                region_lines: 10,
            },
            0,
        );
        let mut r = rng();
        let seq: Vec<u64> = (0..4).map(|_| st.next_line(&mut r)).collect();
        assert_eq!(seq, vec![0, 4, 8, 2]);
    }

    #[test]
    fn random_stays_in_region() {
        let mut st = PatternState::new(Pattern::Random { region_lines: 64 }, 1000);
        let mut r = rng();
        for _ in 0..1000 {
            let l = st.next_line(&mut r);
            assert!((1000..1064).contains(&l));
        }
    }

    #[test]
    fn hot_skews_toward_low_indices() {
        let mut st = PatternState::new(Pattern::Hot { hot_lines: 100 }, 0);
        let mut r = rng();
        let mut low = 0;
        for _ in 0..10_000 {
            if st.next_line(&mut r) < 25 {
                low += 1;
            }
        }
        // With the squared draw, P(idx < 25) = P(u^2 < 0.25) = 0.5.
        assert!(low > 4_000 && low < 6_000, "low={low}");
    }

    #[test]
    fn layout_gives_disjoint_regions() {
        let states = layout(&[
            Pattern::Sequential {
                region_lines: 1 << 10,
            },
            Pattern::Random {
                region_lines: 1 << 12,
            },
        ]);
        let mut r = rng();
        let mut a = states[0].clone();
        let mut b = states[1].clone();
        for _ in 0..100 {
            assert!(a.next_line(&mut r) < (1 << 20));
            assert!(b.next_line(&mut r) >= (1 << 20));
        }
    }

    #[test]
    #[should_panic(expected = "stride must be nonzero")]
    fn zero_stride_panics() {
        let _ = PatternState::new(
            Pattern::Strided {
                stride: 0,
                region_lines: 8,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "region must be nonempty")]
    fn empty_region_panics() {
        let _ = PatternState::new(Pattern::Sequential { region_lines: 0 }, 0);
    }
}
