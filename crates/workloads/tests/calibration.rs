//! Calibration integration test: under the paper's default configuration
//! (fast 1.0x writes only), the workload suite must reproduce the shape of
//! Figure 7 — most workloads fall short of an 8-year lifetime, `zeusmp`
//! comfortably exceeds it — with plausible IPCs throughout.
//!
//! Run with `--nocapture` to see the calibration table:
//! `cargo test -p mct-workloads --release --test calibration -- --nocapture`

use mct_sim::{MellowPolicy, System, SystemConfig};
use mct_workloads::Workload;

fn default_metrics(w: Workload) -> mct_sim::stats::Metrics {
    let mut sys = System::new(SystemConfig::default(), MellowPolicy::default_fast());
    let mut src = w.source(1234);
    sys.warmup(&mut src, w.warmup_insts());
    let stats = sys.run(&mut src, w.detailed_insts(1.0));
    stats.metrics()
}

#[test]
fn default_config_landscape_matches_figure7_shape() {
    let mut zeusmp_lifetime = 0.0;
    let mut below_8y = 0;
    println!(
        "{:<12} {:>8} {:>12} {:>12}",
        "workload", "ipc", "lifetime_y", "energy_mj"
    );
    for w in Workload::all() {
        let m = default_metrics(w);
        println!(
            "{:<12} {:>8.3} {:>12.2} {:>12.3}",
            w.name(),
            m.ipc,
            m.lifetime_years,
            m.energy_j * 1e3
        );
        assert!(
            m.ipc > 0.01 && m.ipc < 3.0,
            "{w}: implausible IPC {}",
            m.ipc
        );
        assert!(
            m.lifetime_years > 0.1 && m.lifetime_years.is_finite(),
            "{w}: implausible lifetime {}",
            m.lifetime_years
        );
        if w == Workload::Zeusmp {
            zeusmp_lifetime = m.lifetime_years;
        } else if m.lifetime_years < 8.0 {
            below_8y += 1;
        }
    }
    assert!(
        zeusmp_lifetime > 8.0,
        "zeusmp should pass the 8-year target by default (got {zeusmp_lifetime:.2}y)"
    );
    assert!(
        below_8y >= 7,
        "most workloads should miss 8 years by default (got {below_8y}/9)"
    );
}

#[test]
fn heterogeneity_across_workloads() {
    // Per-application lifetimes must differ substantially (Table 5's
    // premise: no single static config suits everyone).
    let lifes: Vec<f64> = [Workload::Lbm, Workload::Zeusmp, Workload::Stream]
        .into_iter()
        .map(|w| default_metrics(w).lifetime_years)
        .collect();
    let max = lifes.iter().cloned().fold(f64::MIN, f64::max);
    let min = lifes.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min > 3.0, "lifetimes too uniform: {lifes:?}");
}
