//! Property-based tests for the workload generators.

use proptest::prelude::*;

use mct_sim::trace::AccessSource;
use mct_workloads::{Mix, Workload};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Lbm),
        Just(Workload::Leslie3d),
        Just(Workload::Zeusmp),
        Just(Workload::GemsFdtd),
        Just(Workload::Milc),
        Just(Workload::Bwaves),
        Just(Workload::Libquantum),
        Just(Workload::Ocean),
        Just(Workload::Gups),
        Just(Workload::Stream),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gaps_are_positive_and_lines_bounded(w in arb_workload(), seed in 0u64..500) {
        let mut src = w.source(seed);
        for _ in 0..500 {
            let ev = src.next_access();
            prop_assert!(ev.gap_insts >= 1);
            // All pattern regions live far below 2^48 lines.
            prop_assert!(ev.line < (1 << 48));
        }
    }

    #[test]
    fn same_seed_same_stream(w in arb_workload(), seed in 0u64..500) {
        let mut a = w.source(seed);
        let mut b = w.source(seed);
        for _ in 0..200 {
            prop_assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn empirical_rate_tracks_profile(w in arb_workload()) {
        let mut src = w.source(3);
        let n = 5_000;
        let total_gap: u64 = (0..n).map(|_| src.next_access().gap_insts).sum();
        let measured_per_kinst = n as f64 / (total_gap as f64 / 1e3);
        let nominal = w.profile().nominal_accesses_per_kinst();
        // Burst modulation and phase mixing allow wide but bounded drift.
        prop_assert!(
            measured_per_kinst > nominal * 0.3 && measured_per_kinst < nominal * 3.0,
            "{w}: measured {measured_per_kinst:.2}/kinst vs nominal {nominal:.2}"
        );
    }

    #[test]
    fn write_fraction_tracks_profile(w in arb_workload()) {
        let mut src = w.source(4);
        // Enough accesses to cover a full phase cycle (ocean's is ~46k).
        let n = 60_000;
        let writes = (0..n).filter(|_| src.next_access().kind.is_write()).count();
        let measured = writes as f64 / n as f64;
        let profile = w.profile();
        // Weight phases by how many accesses each contributes per cycle.
        let (mut wsum, mut asum) = (0.0, 0.0);
        for p in &profile.phases {
            let accesses = p.insts.min(4_000_000) as f64 / p.gap_mean;
            wsum += p.write_frac * accesses;
            asum += accesses;
        }
        let nominal = wsum / asum;
        prop_assert!((measured - nominal).abs() < 0.12,
            "{w}: measured write frac {measured:.3} vs nominal {nominal:.3}");
    }

    #[test]
    fn mix_sources_are_decorrelated(seed in 0u64..200) {
        for mix in Mix::all() {
            let mut sources = mix.sources(seed);
            if sources.len() >= 2 {
                let (left, right) = sources.split_at_mut(1);
                let a = &mut left[0];
                let b = &mut right[0];
                let same = (0..100)
                    .filter(|_| a.next_access().line == b.next_access().line)
                    .count();
                prop_assert!(same < 30, "{mix}: correlated member streams");
            }
        }
    }
}
