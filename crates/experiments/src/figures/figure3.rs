//! Figure 3: including wear quota in the learned space degrades
//! prediction accuracy.
//!
//! Trains gradient boosting on a feature-stratified sample (one
//! configuration per primary-feature class, the paper's 77-sample recipe)
//! of (a) the wear-quota-free sweep and (b) the full sweep including
//! quota configurations, then scores accuracy over the respective space.
//! The paper reports 2–6% degradation when quota is included.

use std::io::{self, Write};

use mct_core::{ConfigSpace, MetricsPredictor, ModelKind};
use mct_ml::coefficient_of_determination;
use mct_workloads::Workload;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cache::{load_or_compute_sweeps, strided_configs, SweepDataset, SweepRequest};
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

const WORKLOADS: [Workload; 3] = [Workload::Lbm, Workload::Leslie3d, Workload::Stream];

/// Train on one member per primary-feature class; score R^2 over the
/// whole dataset.
fn accuracy(ds: &SweepDataset, dim: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut classes: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, c) in ds.configs.iter().enumerate() {
        let key = format!(
            "{:.1}/{:.1}/{}{}",
            c.fast_latency,
            c.slow_latency,
            u8::from(c.fast_cancellation),
            u8::from(c.slow_cancellation)
        );
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => classes.push((key, vec![i])),
        }
    }
    let pairs = ds.pairs();
    let train: Vec<_> = classes
        .iter()
        .map(|(_, members)| pairs[*members.choose(&mut rng).expect("nonempty")])
        .collect();
    let mut predictor = MetricsPredictor::new(ModelKind::GradientBoosting);
    predictor.fit(&train, None);
    let clamp = mct_core::predictor::LIFETIME_CLAMP_YEARS;
    let preds: Vec<f64> = ds
        .configs
        .iter()
        .map(|c| predictor.predict(c).to_array()[dim])
        .collect();
    let truth: Vec<f64> = ds
        .metrics
        .iter()
        .map(|m| m.to_array()[dim].min(clamp))
        .collect();
    coefficient_of_determination(&preds, &truth)
}

/// Render Figure 3.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 3: wear quota in vs out of the learned space (scale: {scale}) ==\n"
    )?;
    let full_space = ConfigSpace::full(8.0);
    let free_space = ConfigSpace::without_wear_quota();
    let full_configs = strided_configs(full_space.configs(), scale);
    let free_configs = strided_configs(free_space.configs(), scale);

    // Six sweeps (3 workloads x {free, full} space) in one batch:
    // requests alternate free/full per workload.
    let mut requests: Vec<SweepRequest> = Vec::new();
    for w in WORKLOADS {
        requests.push(SweepRequest {
            workload: w,
            configs: free_configs.clone(),
        });
        requests.push(SweepRequest {
            workload: w,
            configs: full_configs.clone(),
        });
    }
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    for (dim, obj) in ["ipc", "energy"]
        .iter()
        .enumerate()
        .map(|(i, o)| (i * 2, o))
    {
        writeln!(out, "-- objective: {obj} --\n")?;
        let mut table = Table::new([
            "workload",
            "R2 excl. quota",
            "R2 incl. quota",
            "degradation",
        ]);
        for (wi, w) in WORKLOADS.into_iter().enumerate() {
            let ds_free = &datasets[2 * wi];
            let ds_full = &datasets[2 * wi + 1];
            let free_r2 = accuracy(ds_free, dim, 11);
            let full_r2 = accuracy(ds_full, dim, 11);
            table.row([
                w.name().to_string(),
                format!("{free_r2:.3}"),
                format!("{full_r2:.3}"),
                format!("{:+.1}%", (full_r2 - free_r2) * 100.0),
            ]);
        }
        write!(out, "{}", table.render())?;
        writeln!(out)?;
    }
    writeln!(
        out,
        "Expected shape (paper Fig. 3): accuracy degrades by a few percent when\n\
         wear-quota configurations join the space — which is why MCT excludes\n\
         quota from learning and applies it as a post-hoc fixup (Section 4.4)."
    )?;
    Ok(())
}
