//! Figure 7 + Table 10: the headline result.
//!
//! Compares MCT (gradient boosting and quadratic-lasso) against the
//! default, the best static policy, and the brute-force ideal, under the
//! 8-year objective, for all ten workloads. The paper's headline: MCT-GB
//! gains ~9.2% IPC and saves ~8.0% energy vs the static policy, reaching
//! ~94.5% of ideal performance with ~5.3% extra energy.

use std::io::{self, Write};

use mct_core::{ModelKind, NvmConfig, Objective};
use mct_sim::stats::Metrics;
use mct_workloads::Workload;

use crate::cache::{cached_measure, load_or_compute_sweeps, strided_configs, SweepRequest};
use crate::figures::{cached_mct_outcome, geomean};
use crate::ideal::ideal_for;
use crate::report::{config_table_header, config_table_row, Table};
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

/// Run the MCT controller (through the derived-result cache) and measure
/// the *deployment* of its chosen configuration with the same
/// long-window methodology as the default/static/ideal references (the
/// paper's testing period is 2B instructions — long enough that
/// short-window drain artifacts vanish; our scaled windows are not, so
/// the deployed choice is re-measured on the shared rig; the
/// runtime-overhead story lives in figure9).
fn run_mct(w: Workload, kind: ModelKind, scale: Scale) -> (Metrics, NvmConfig, f64) {
    let outcome = cached_mct_outcome(
        w,
        kind,
        scale.controller_insts(),
        8.0,
        scale,
        EXPERIMENT_SEED,
    );
    let deployed = cached_measure(w, &outcome.chosen_config, scale, EXPERIMENT_SEED);
    let epi = deployed.energy_j / w.detailed_insts(scale.detailed_factor()) as f64;
    (deployed, outcome.chosen_config, epi)
}

/// Render Figure 7 and Table 10.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 7 / Table 10: MCT vs default/static/ideal, 8-year target (scale: {scale}) ==\n"
    )?;
    let full_configs = strided_configs(mct_core::ConfigSpace::full(8.0).configs(), scale);
    let objective = Objective::paper_default(8.0);

    let mut fig = Table::new([
        "workload",
        "ipc def",
        "ipc static",
        "ipc mct-gb",
        "ipc mct-ql",
        "ipc ideal",
        "life mct-gb",
        "nJ/inst static",
        "nJ/inst mct-gb",
        "nJ/inst ideal",
    ]);
    let mut table10 = Table::new(config_table_header());
    table10.row(config_table_row("static", &NvmConfig::static_baseline()));

    let requests: Vec<SweepRequest> = Workload::all()
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: full_configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    let mut gb_vs_static_ipc = Vec::new();
    let mut gb_vs_static_energy = Vec::new();
    let mut gb_vs_ideal_ipc = Vec::new();
    let mut gb_vs_ideal_energy = Vec::new();
    let mut ql_vs_static_ipc = Vec::new();
    let mut ql_vs_static_energy = Vec::new();
    let mut gb_lifetimes_ok = 0;

    for (w, ds) in Workload::all().into_iter().zip(&datasets) {
        let sweep_insts = w.detailed_insts(scale.detailed_factor()) as f64;
        let def = ds
            .metrics_of(&NvmConfig::default_config())
            .expect("default");
        let stat = ds
            .metrics_of(&NvmConfig::static_baseline())
            .expect("static");
        let ideal = ideal_for(ds, &objective);
        let (gb, gb_cfg, gb_epi) = run_mct(w, ModelKind::GradientBoosting, scale);
        let (ql, _, ql_epi) = run_mct(w, ModelKind::QuadraticLasso, scale);
        let stat_epi = stat.energy_j / sweep_insts;
        let ideal_epi = ideal.metrics.energy_j / sweep_insts;

        fig.row([
            w.name().to_string(),
            format!("{:.3}", def.ipc),
            format!("{:.3}", stat.ipc),
            format!("{:.3}", gb.ipc),
            format!("{:.3}", ql.ipc),
            format!("{:.3}", ideal.metrics.ipc),
            format!("{:.1}", gb.lifetime_years.min(99.0)),
            format!("{:.3}", stat_epi * 1e9),
            format!("{:.3}", gb_epi * 1e9),
            format!("{:.3}", ideal_epi * 1e9),
        ]);
        table10.row(config_table_row(w.name(), &gb_cfg));

        gb_vs_static_ipc.push(gb.ipc / stat.ipc);
        // Energy is compared per instruction: window lengths differ
        // between the sweep and controller measurements.
        gb_vs_static_energy.push(gb_epi / stat_epi);
        gb_vs_ideal_ipc.push(gb.ipc / ideal.metrics.ipc);
        gb_vs_ideal_energy.push(gb_epi / ideal_epi);
        ql_vs_static_ipc.push(ql.ipc / stat.ipc);
        ql_vs_static_energy.push(ql_epi / stat_epi);
        if gb.lifetime_years >= 8.0 * 0.9 {
            gb_lifetimes_ok += 1;
        }
    }
    write!(out, "{}", fig.render())?;

    writeln!(out, "\n-- headline numbers (geomean over 10 workloads) --")?;
    writeln!(
        out,
        "MCT-GB vs static:   IPC {:+.2}%   energy {:+.2}%   (paper: +9.24% / -7.95%)",
        (geomean(&gb_vs_static_ipc) - 1.0) * 100.0,
        (geomean(&gb_vs_static_energy) - 1.0) * 100.0
    )?;
    writeln!(
        out,
        "MCT-QL vs static:   IPC {:+.2}%   energy {:+.2}%   (paper: +6% / -5.3%)",
        (geomean(&ql_vs_static_ipc) - 1.0) * 100.0,
        (geomean(&ql_vs_static_energy) - 1.0) * 100.0
    )?;
    writeln!(
        out,
        "MCT-GB vs ideal:    IPC {:.2}% of ideal, energy {:+.2}% (paper: 94.49% / +5.3%)",
        geomean(&gb_vs_ideal_ipc) * 100.0,
        (geomean(&gb_vs_ideal_energy) - 1.0) * 100.0
    )?;
    writeln!(
        out,
        "MCT-GB lifetime >= ~8y on {gb_lifetimes_ok}/10 workloads"
    )?;

    writeln!(out, "\n== Table 10: MCT-GB selected configurations ==\n")?;
    write!(out, "{}", table10.render())?;
    writeln!(
        out,
        "\nEnergy columns are per-instruction (nJ/inst) so sweep and controller\nwindows of different lengths compare fairly."
    )?;
    Ok(())
}
