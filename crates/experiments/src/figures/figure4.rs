//! Figure 4: (a) lasso-linear coefficients identify the three primary
//! features; (b) feature-based sampling beats random sampling for
//! gradient boosting.

use std::io::{self, Write};

use mct_core::{
    predictor::lasso_feature_report, sampling, ConfigSpace, MetricsPredictor, ModelKind, NvmConfig,
};
use mct_ml::coefficient_of_determination;
use mct_workloads::Workload;

use crate::cache::{load_or_compute_sweeps, strided_configs, SweepDataset, SweepRequest};
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

const COEF_WORKLOADS: [Workload; 4] = [
    Workload::Lbm,
    Workload::Leslie3d,
    Workload::GemsFdtd,
    Workload::Stream,
];

fn train_eval(ds: &SweepDataset, train_cfgs: &[NvmConfig], dim: usize) -> f64 {
    let pairs = ds.pairs();
    let train: Vec<_> = train_cfgs
        .iter()
        .filter_map(|c| pairs.iter().find(|(pc, _)| pc == c).copied())
        .collect();
    if train.len() < 8 {
        return f64::NAN;
    }
    let mut p = MetricsPredictor::new(ModelKind::GradientBoosting);
    p.fit(&train, None);
    let clamp = mct_core::predictor::LIFETIME_CLAMP_YEARS;
    let preds: Vec<f64> = ds
        .configs
        .iter()
        .map(|c| p.predict(c).to_array()[dim])
        .collect();
    let truth: Vec<f64> = ds
        .metrics
        .iter()
        .map(|m| m.to_array()[dim].min(clamp))
        .collect();
    coefficient_of_determination(&preds, &truth)
}

/// Render Figures 4a and 4b.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);

    // One batch covers both halves: 4a reads the four coefficient
    // workloads out of the same ten datasets 4b uses.
    let requests: Vec<SweepRequest> = Workload::all()
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);
    let dataset_of = |w: Workload| -> &SweepDataset {
        let i = Workload::all()
            .into_iter()
            .position(|x| x == w)
            .expect("workload in all()");
        &datasets[i]
    };

    writeln!(
        out,
        "== Figure 4a: lasso-linear coefficients on compressed features (scale: {scale}) ==\n"
    )?;
    let mut coef = Table::new([
        "workload/objective",
        "bank_aware",
        "eager_writebacks",
        "fast_latency",
        "slow_latency",
        "cancellation",
    ]);
    let names = NvmConfig::compressed_feature_names();
    for w in COEF_WORKLOADS {
        let ds = dataset_of(w);
        for (dim, obj) in ["ipc", "lifetime", "energy"].iter().enumerate() {
            let report = lasso_feature_report(&ds.pairs(), dim, false, 0.01);
            let mut cells = vec![format!("{}/{}", w.name(), obj)];
            for n in names {
                let v = report
                    .iter()
                    .find(|(rn, _)| rn == n)
                    .map_or(0.0, |(_, v)| *v);
                cells.push(format!("{v:+.3}"));
            }
            coef.row(cells);
        }
    }
    write!(out, "{}", coef.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 4a): bank_aware and eager_writebacks carry\n\
         near-zero weight; fast_latency, slow_latency and cancellation are the\n\
         three primary features."
    )?;

    writeln!(
        out,
        "\n== Figure 4b: feature-based vs random sampling (gradient boosting) ==\n"
    )?;
    let mut table = Table::new(["workload", "R2 random", "R2 feature-based", "delta"]);
    // Build sample sets over the *strided* config list so every training
    // config has sweep data at quick scale.
    let strided_space_cfgs = configs.clone();
    for w in Workload::all() {
        let ds = dataset_of(w);
        let fb = {
            // Stratify the strided list by primary-feature class.
            let mut classes: Vec<(String, NvmConfig)> = Vec::new();
            for c in &strided_space_cfgs {
                let key = format!(
                    "{:.1}/{:.1}/{}{}",
                    c.fast_latency,
                    c.slow_latency,
                    u8::from(c.fast_cancellation),
                    u8::from(c.slow_cancellation)
                );
                if !classes.iter().any(|(k, _)| *k == key) {
                    classes.push((key, *c));
                }
            }
            classes.into_iter().map(|(_, c)| c).collect::<Vec<_>>()
        };
        let n = fb.len();
        let random: Vec<NvmConfig> = {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
            let mut all = strided_space_cfgs.clone();
            all.shuffle(&mut rng);
            all.truncate(n);
            all
        };
        let r_rand = train_eval(ds, &random, 0);
        let r_fb = train_eval(ds, &fb, 0);
        table.row([
            w.name().to_string(),
            format!("{r_rand:.3}"),
            format!("{r_fb:.3}"),
            format!("{:+.3}", r_fb - r_rand),
        ]);
    }
    write!(out, "{}", table.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 4b): feature-based sampling improves gradient-\n\
         boosting accuracy (paper: ~3% on average across objectives).\n\
         (Full-space feature-based sampling helper: {} samples.)",
        sampling::feature_based_samples(&space, 1).len()
    )?;
    Ok(())
}
