//! Table 4: ideal configurations for leslie3d under minimum-lifetime
//! constraints of 4, 6, 8 and 10 years.
//!
//! Per the paper, this table explores the space *without* wear quota.

use std::io::{self, Write};

use mct_core::{ConfigSpace, Objective};
use mct_workloads::Workload;

use crate::cache::{load_or_compute_sweep, strided_configs};
use crate::ideal::ideal_for;
use crate::report::{config_table_header, config_table_row, Table};
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

/// Render Table 4.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Table 4: leslie3d ideal configuration vs lifetime target (scale: {scale}) ==\n"
    )?;
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);
    let dataset = load_or_compute_sweep(Workload::Leslie3d, &configs, scale, EXPERIMENT_SEED);

    let mut table = Table::new(config_table_header());
    let mut metrics_table = Table::new(["target", "ipc", "lifetime_y", "energy_mJ", "feasible"]);
    for target in [4.0, 6.0, 8.0, 10.0] {
        let res = ideal_for(&dataset, &Objective::paper_default(target));
        table.row(config_table_row(&format!("{target:.1} years"), &res.config));
        metrics_table.row([
            format!("{target:.1}y"),
            format!("{:.3}", res.metrics.ipc),
            format!("{:.2}", res.metrics.lifetime_years),
            format!("{:.2}", res.metrics.energy_j * 1e3),
            res.feasible.to_string(),
        ]);
    }
    write!(out, "{}", table.render())?;
    writeln!(out)?;
    write!(out, "{}", metrics_table.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Table 4): stricter targets push the ideal toward\n\
         higher slow/fast latencies; the optimal changes with the objective."
    )?;
    Ok(())
}
