//! Figure 10 + Table 11: multi-program workloads on the 4-core system.
//!
//! Compares default, the static policy, and MCT (gradient boosting) on
//! the six Table 11 mixes: normalized geomean IPC and memory lifetime
//! against the 8-year floor.

use std::io::{self, Write};

use mct_workloads::Mix;

use crate::cache::{derived_key, derived_store};
use crate::mix_mct::{run_mix_all, MixOutcome};
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

/// Render Figure 10 and Table 11.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 10 / Table 11: multi-program mixes (scale: {scale}) ==\n"
    )?;

    let mut table11 = Table::new(["mix", "members"]);
    for m in Mix::all() {
        let names: Vec<&str> = m.members().iter().map(|w| w.name()).collect();
        table11.row([m.name().to_string(), names.join(", ")]);
    }
    write!(out, "{}", table11.render())?;
    writeln!(out)?;

    let store = derived_store(scale, EXPERIMENT_SEED);
    let mut fig = Table::new([
        "mix",
        "ipc(def)/static",
        "ipc(mct)/static",
        "life def",
        "life static",
        "life mct",
        "fairness mct",
        "mct config",
    ]);
    let mut mct_gain = Vec::new();
    let mut mct_meets = 0;
    for m in Mix::all() {
        // Mix runs warm an 8 MB shared LLC each — by far the most
        // expensive derived results, so cache all three policy outcomes
        // as one unit.
        let key = derived_key(&format!("mix_all/{}", m.name()), EXPERIMENT_SEED, &[8.0]);
        let [def, stat, mct]: [MixOutcome; 3] =
            store.get_or_compute(key, || run_mix_all(m, scale, EXPERIMENT_SEED, 8.0));
        fig.row([
            m.name().to_string(),
            format!("{:.3}", def.geomean_ipc / stat.geomean_ipc),
            format!("{:.3}", mct.geomean_ipc / stat.geomean_ipc),
            format!("{:.1}", def.lifetime_years.min(99.0)),
            format!("{:.1}", stat.lifetime_years.min(99.0)),
            format!("{:.1}", mct.lifetime_years.min(99.0)),
            format!("{:.2}", mct.fairness),
            mct.config.to_string(),
        ]);
        mct_gain.push(mct.geomean_ipc / stat.geomean_ipc);
        if mct.lifetime_years >= 8.0 * 0.9 {
            mct_meets += 1;
        }
    }
    write!(out, "{}", fig.render())?;
    let gm = (mct_gain.iter().map(|x| x.ln()).sum::<f64>() / mct_gain.len() as f64).exp();
    writeln!(
        out,
        "\nMCT vs static (geomean IPC): {:+.1}%  (paper: ~+20%); lifetime >= ~8y on {}/6 mixes",
        (gm - 1.0) * 100.0,
        mct_meets
    )?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 10): MCT beats the static policy on geomean\n\
         IPC while satisfying the 8-year floor; default violates the floor."
    )?;
    Ok(())
}
