//! Default-configuration landscape: the premise of Figure 7.
//!
//! Prints IPC, projected lifetime and energy under the paper's *default*
//! configuration for all ten workloads. Most workloads must miss the
//! 8-year target; `zeusmp` must pass.

use std::io::{self, Write};

use mct_core::NvmConfig;
use mct_workloads::Workload;

use crate::cache::{load_or_compute_sweeps, SweepRequest};
use crate::report::Table;
use crate::scale::Scale;

/// Render the calibration table.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Calibration: default configuration landscape (scale: {scale}) ==\n"
    )?;
    // One single-config sweep per workload, flattened into one scheduler
    // round (and served from the grain cache on reruns).
    let requests: Vec<SweepRequest> = Workload::all()
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: vec![NvmConfig::default_config()],
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, 2017);

    let mut table = Table::new(["workload", "ipc", "lifetime_y", "energy_mJ", "meets 8y?"]);
    for (w, ds) in Workload::all().into_iter().zip(&datasets) {
        let m = ds.metrics[0];
        table.row([
            w.name().to_string(),
            format!("{:.3}", m.ipc),
            format!("{:.2}", m.lifetime_years),
            format!("{:.2}", m.energy_j * 1e3),
            if m.lifetime_years >= 8.0 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    write!(out, "{}", table.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 7): zeusmp passes 8 years; the rest fall short."
    )?;
    Ok(())
}
