//! Figure 1 + Table 5: default vs best-static vs ideal per application
//! (8-year objective), and the per-application ideal configurations.

use std::io::{self, Write};

use mct_core::{ConfigSpace, NvmConfig, Objective};
use mct_workloads::Workload;

use crate::cache::{load_or_compute_sweeps, strided_configs, SweepRequest};
use crate::figures::geomean;
use crate::ideal::ideal_for;
use crate::report::{config_table_header, config_table_row, Table};
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

/// Render Figure 1 and Table 5.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 1 / Table 5: default vs baseline vs ideal (scale: {scale}) ==\n"
    )?;
    let space = ConfigSpace::full(8.0);
    let configs = strided_configs(space.configs(), scale);
    let objective = Objective::paper_default(8.0);

    let mut fig = Table::new([
        "workload",
        "ipc(def)",
        "ipc(base)",
        "ipc(ideal)",
        "life(def)",
        "life(base)",
        "life(ideal)",
        "en(def)",
        "en(base)",
        "en(ideal)",
    ]);
    let mut table5 = Table::new(config_table_header());
    table5.row(config_table_row("default", &NvmConfig::default_config()));
    table5.row(config_table_row("baseline", &NvmConfig::static_baseline()));

    // All ten sweeps in one scheduler batch.
    let requests: Vec<SweepRequest> = Workload::all()
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    let mut geo: Vec<(f64, f64)> = Vec::new(); // (ideal/base ipc, ideal/base energy)
    for (w, ds) in Workload::all().into_iter().zip(&datasets) {
        let def = ds
            .metrics_of(&NvmConfig::default_config())
            .expect("default measured");
        let base = ds
            .metrics_of(&NvmConfig::static_baseline())
            .expect("baseline measured");
        let ideal = ideal_for(ds, &objective);
        fig.row([
            w.name().to_string(),
            format!("{:.3}", def.ipc),
            format!("{:.3}", base.ipc),
            format!("{:.3}", ideal.metrics.ipc),
            format!("{:.1}", def.lifetime_years.min(99.0)),
            format!("{:.1}", base.lifetime_years.min(99.0)),
            format!("{:.1}", ideal.metrics.lifetime_years.min(99.0)),
            format!("{:.2}", def.energy_j * 1e3),
            format!("{:.2}", base.energy_j * 1e3),
            format!("{:.2}", ideal.metrics.energy_j * 1e3),
        ]);
        table5.row(config_table_row(
            &format!("{}_ideal", w.name()),
            &ideal.config,
        ));
        geo.push((
            ideal.metrics.ipc / base.ipc,
            ideal.metrics.energy_j / base.energy_j,
        ));
    }
    write!(out, "{}", fig.render())?;

    let ipc_gain: Vec<f64> = geo.iter().map(|g| g.0).collect();
    let en_ratio: Vec<f64> = geo.iter().map(|g| g.1).collect();
    writeln!(
        out,
        "\nideal vs baseline (geomean): IPC x{:.3}, energy x{:.3}",
        geomean(&ipc_gain),
        geomean(&en_ratio)
    )?;
    writeln!(out, "\n== Table 5: ideal configurations ==\n")?;
    write!(out, "{}", table5.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 1/Table 5): baseline lags ideal on several\n\
         applications; no two applications share the same ideal configuration."
    )?;
    Ok(())
}
