//! Tables 2 & 3: the configuration-space definition, plus enumeration
//! counts (the paper reports 3,164 configurations; see DESIGN.md for why
//! this enumeration lands near, not at, that number).

use std::io::{self, Write};

use mct_core::{space, ConfigSpace, NvmConfig};

use crate::report::Table;
use crate::scale::Scale;

/// Render Tables 2 & 3.
pub fn run(_scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "== Tables 2 & 3: configuration space ==\n")?;

    let mut params = Table::new(["parameter", "values"]);
    params.row(["fast_cancellation", "true/false"]);
    params.row([
        "slow_cancellation",
        "true/false (true if fast_cancellation)",
    ]);
    params.row(["fast_latency", "{1.0, 1.5, ..., 4.0}"]);
    params.row(["slow_latency", "same grid, >= fast_latency"]);
    params.row(["bank_aware_threshold", "{1, 2, 3, 4} or off"]);
    params.row(["eager_threshold", "{4, 8, 16, 32} or off"]);
    params.row(["wear_quota_target", "off / objective's lifetime target"]);
    write!(out, "{}", params.render())?;

    let full = ConfigSpace::full(8.0);
    let learn = ConfigSpace::without_wear_quota();
    writeln!(
        out,
        "\nfull space: {} configurations (paper: 3,164)",
        full.len()
    )?;
    writeln!(
        out,
        "learned space (wear quota excluded, Section 4.4): {}",
        learn.len()
    )?;
    writeln!(out, "latency grid: {:?}", space::LATENCY_GRID)?;
    writeln!(
        out,
        "\nanchors: default = [{}], static baseline = [{}]",
        NvmConfig::default_config(),
        NvmConfig::static_baseline()
    )?;
    let slow_users = full.iter().filter(|c| c.uses_slow_writes()).count();
    writeln!(
        out,
        "configs using slow-write techniques: {} ({:.1}%)",
        slow_users,
        100.0 * slow_users as f64 / full.len() as f64
    )?;
    Ok(())
}
