//! Figure 6: phase detection on ocean.
//!
//! Runs ocean under the static baseline, records the memory workload per
//! detector window and the t-test score, and marks detected phases —
//! the reproduction of the paper's trace plot, in ASCII.

use std::io::{self, Write};

use mct_core::{NvmConfig, PhaseDetector, PhaseDetectorConfig};
use mct_sim::system::{System, SystemConfig};
use mct_workloads::Workload;

use crate::report::ascii_series;
use crate::scale::Scale;

/// Render Figure 6.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 6: phase detection on ocean (scale: {scale}) ==\n"
    )?;
    let mut sys = System::new(
        SystemConfig::default(),
        NvmConfig::static_baseline().to_policy(),
    );
    let mut src = Workload::Ocean.source(2017);
    sys.warmup(&mut src, Workload::Ocean.warmup_insts());

    // Scaled analog of the paper's I = 1M: ocean's coarse phases are 2M
    // instructions here, so 50k-instruction windows give the detector the
    // same relative resolution.
    let cfg = PhaseDetectorConfig {
        window_insts: 50_000,
        history_windows: 60,
        recent_windows: 6,
        score_threshold: 15.0,
    };
    let mut detector = PhaseDetector::new(cfg);
    let total_windows = (12_000_000.0 * scale.detailed_factor()) as u64 / cfg.window_insts;

    let mut workloads = Vec::new();
    let mut scores = Vec::new();
    let mut phases = Vec::new();
    for w in 0..total_windows {
        let before = sys.perf_counters();
        sys.run_window(&mut src, cfg.window_insts);
        let after = sys.perf_counters();
        let workload = after.workload_since(&before) as f64;
        let hit = detector.observe(workload);
        workloads.push(workload);
        scores.push(detector.last_score().min(100.0));
        if hit {
            phases.push(w);
        }
    }

    writeln!(out, "memory workload per {}-inst window:", cfg.window_insts)?;
    writeln!(out, "  {}", ascii_series(&workloads, 100))?;
    writeln!(out, "t-test score:")?;
    writeln!(out, "  {}", ascii_series(&scores, 100))?;
    writeln!(out, "\nphases detected at windows: {phases:?}")?;
    writeln!(out, "total detected: {}", detector.phases_detected())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 6): detections line up with ocean's\n\
         coarse compute/communicate alternation (every ~{} windows here),\n\
         while fine-grained fluctuations are tolerated.",
        2_000_000 / cfg.window_insts
    )?;
    Ok(())
}
