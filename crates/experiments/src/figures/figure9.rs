//! Figure 9: sampling overhead, and extrapolated gains as the testing
//! period grows relative to the sampling period (paper Eq. 4).

use std::io::{self, Write};

use mct_core::{ModelKind, NvmConfig};
use mct_workloads::Workload;

use crate::cache::{load_or_compute_sweeps, strided_configs, SweepRequest};
use crate::figures::{cached_mct_outcome, geomean};
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

/// Render Figures 9a and 9b.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 9: sampling overhead & extrapolation (scale: {scale}) ==\n"
    )?;
    let full_configs = strided_configs(mct_core::ConfigSpace::full(8.0).configs(), scale);

    let requests: Vec<SweepRequest> = Workload::all()
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: full_configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    let mut fig9a = Table::new([
        "workload",
        "sampling ipc / static",
        "testing ipc / static",
        "sampling nJ/i / static",
        "testing nJ/i / static",
    ]);
    let mut outcomes = Vec::new();
    let mut ipc_ratios_sampling = Vec::new();
    let mut ipc_ratios_testing = Vec::new();
    for (w, ds) in Workload::all().into_iter().zip(&datasets) {
        let sweep_insts = w.detailed_insts(scale.detailed_factor()) as f64;
        let stat = ds
            .metrics_of(&NvmConfig::static_baseline())
            .expect("static");
        let stat_epi = stat.energy_j / sweep_insts;

        // The identical controller run figure7 caches: same model,
        // budget, target, and seed — so one execution serves both.
        let outcome = cached_mct_outcome(
            w,
            ModelKind::GradientBoosting,
            scale.controller_insts(),
            8.0,
            scale,
            EXPERIMENT_SEED,
        );

        let sampling_epi = outcome.sampling_metrics.energy_j / outcome.sampling_insts.max(1) as f64;
        let testing_epi = outcome.final_metrics.energy_j / outcome.testing_insts.max(1) as f64;
        fig9a.row([
            w.name().to_string(),
            format!("{:.3}", outcome.sampling_metrics.ipc / stat.ipc),
            format!("{:.3}", outcome.final_metrics.ipc / stat.ipc),
            format!("{:.3}", sampling_epi / stat_epi),
            format!("{:.3}", testing_epi / stat_epi),
        ]);
        ipc_ratios_sampling.push(outcome.sampling_metrics.ipc / stat.ipc);
        ipc_ratios_testing.push(outcome.final_metrics.ipc / stat.ipc);
        outcomes.push((w, outcome, stat, stat_epi));
    }
    writeln!(
        out,
        "-- Figure 9a: sampling vs testing period, normalized to static --\n"
    )?;
    write!(out, "{}", fig9a.render())?;
    writeln!(
        out,
        "\ngeomean: sampling {:.2}% of static IPC; testing {:.2}% of static IPC",
        geomean(&ipc_ratios_sampling) * 100.0,
        geomean(&ipc_ratios_testing) * 100.0
    )?;
    writeln!(
        out,
        "(paper: sampling 94.32% of baseline; testing 1.09x baseline)"
    )?;

    writeln!(
        out,
        "\n-- Figure 9b: extrapolated total IPC/energy vs alpha = testing/sampling --\n"
    )?;
    let alphas = [1.0, 2.0, 5.0, 10.0, 20.0, 50.0];
    let mut fig9b = Table::new(
        std::iter::once("alpha".to_string())
            .chain(alphas.iter().map(|a| format!("{a:.0}")))
            .collect::<Vec<_>>(),
    );
    let mut ipc_row = vec!["total IPC / static (geomean)".to_string()];
    let mut en_row = vec!["total nJ/i / static (geomean)".to_string()];
    for &alpha in &alphas {
        let mut ipcs = Vec::new();
        let mut ens = Vec::new();
        for (_, outcome, stat, stat_epi) in &outcomes {
            ipcs.push(outcome.extrapolated_ipc(alpha) / stat.ipc);
            ens.push(outcome.extrapolated_energy_per_inst(alpha) / stat_epi);
        }
        ipc_row.push(format!("{:.3}", geomean(&ipcs)));
        en_row.push(format!("{:.3}", geomean(&ens)));
    }
    fig9b.row(ipc_row);
    fig9b.row(en_row);
    write!(out, "{}", fig9b.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 9b): at alpha = 10, MCT retains most of its\n\
         gains (paper: +7.93% IPC, -6.7% energy vs static)."
    )?;
    Ok(())
}
