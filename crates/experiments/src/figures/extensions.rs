//! Extension experiment (beyond the paper's case study): the two
//! remaining Table 1 tradeoffs — write-latency-vs-retention and
//! read-latency-vs-disturbance — exercised end-to-end, plus MCT's
//! learn-and-select loop over the extended configuration space.
//!
//! The paper's Section 8: the selected primary features "are general
//! features in NVM techniques so that our framework can also be applied
//! to the optimization of other NVM techniques". This stage demonstrates
//! exactly that.

use std::io::{self, Write};

use mct_core::extensions::{extended_space, ExtendedNvmConfig};
use mct_core::{NvmConfig, Objective};
use mct_ml::{Dataset, GradientBoosting, GradientBoostingParams, Regressor};
use mct_sim::stats::Metrics;
use mct_workloads::Workload;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cache::{cached_measurement, grain_store, vector_grain_key};
use crate::report::Table;
use crate::runner::{shared_rig, EXPERIMENT_SEED};
use crate::scale::Scale;

/// The extension studies run off-scale budgets (70% of the workload's
/// scaled window).
fn ext_budget(w: Workload, scale: Scale) -> u64 {
    w.detailed_insts(scale.detailed_factor() * 0.7)
}

/// Measure one extended configuration through the grain cache and the
/// shared warm-rig pool. Extended vectors are 13-dim, so their grain
/// keys can never collide with paper-space (7-dim) grains.
fn measure_ext(w: Workload, scale: Scale, cfg: &ExtendedNvmConfig) -> Metrics {
    let budget = ext_budget(w, scale);
    let store = grain_store(w, scale, EXPERIMENT_SEED);
    let key = vector_grain_key(w, EXPERIMENT_SEED, budget, &cfg.to_vector());
    cached_measurement(&store, key, || {
        shared_rig(w, EXPERIMENT_SEED, budget)
            .rig()
            .measure_policy(cfg.to_policy())
    })
}

fn tradeoff_curves(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "-- tradeoff curves --\n")?;
    // Retention relax, applied globally: relaxed pulses free banks sooner
    // but every relaxed write owes a scrub, roughly doubling write volume.
    // In this substrate (posted writes, bandwidth-bound backpressure) the
    // global form therefore loses IPC while burning lifetime — the reason
    // refs [24][53] apply it selectively per data lifetime, and exactly
    // the kind of losing technique MCT must learn to leave disabled.
    let mut t = Table::new(["bwaves / retention speedup", "ipc", "lifetime_y"]);
    for speedup in [None, Some(0.75), Some(0.625), Some(0.5)] {
        let cfg = ExtendedNvmConfig {
            base: NvmConfig::default_config(),
            retention_speedup: speedup,
            turbo: None,
        };
        let m = measure_ext(Workload::Bwaves, scale, &cfg);
        t.row([
            speedup.map_or("off".to_string(), |s| format!("{s:.3}")),
            format!("{:.3}", m.ipc),
            format!("{:.2}", m.lifetime_years.min(99.0)),
        ]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(measured shape: global relaxation loses IPC and lifetime here; the\n extended space lets MCT discover that and keep it off)\n"
    )?;

    // Turbo reads on a read-heavy workload.
    let mut t = Table::new(["milc / turbo (speedup, thresh)", "ipc", "lifetime_y"]);
    for turbo in [None, Some((0.7, 128)), Some((0.7, 32)), Some((0.5, 32))] {
        let cfg = ExtendedNvmConfig {
            base: NvmConfig::default_config(),
            retention_speedup: None,
            turbo,
        };
        let m = measure_ext(Workload::Milc, scale, &cfg);
        t.row([
            turbo.map_or("off".to_string(), |(s, th)| format!("({s:.1}, {th})")),
            format!("{:.3}", m.ipc),
            format!("{:.2}", m.lifetime_years.min(99.0)),
        ]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "(shape: faster reads raise IPC; disturb refreshes cut lifetime)\n"
    )?;
    Ok(())
}

fn mct_over_extended_space(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "-- MCT over the extended space (gradient boosting, 8-year objective) --\n"
    )?;
    let workload = Workload::Milc;
    let space = extended_space(32);
    writeln!(out, "extended space: {} configurations", space.len())?;

    // Runtime sampling: 64 random extended configs.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut samples = space.clone();
    samples.shuffle(&mut rng);
    samples.truncate(64);
    let measured: Vec<(ExtendedNvmConfig, Metrics)> = samples
        .iter()
        .map(|c| (*c, measure_ext(workload, scale, c)))
        .collect();

    // Fit one GBRT per objective on the 13-dim extended vectors.
    let rows: Vec<Vec<f64>> = measured.iter().map(|(c, _)| c.to_vector()).collect();
    let fit = |dim: usize| {
        let y: Vec<f64> = measured
            .iter()
            .map(|(_, m)| m.to_array()[dim].min(1e3))
            .collect();
        let mut g = GradientBoosting::new(GradientBoostingParams::default());
        g.fit(&Dataset::from_rows(rows.clone(), y));
        g
    };
    let models = [fit(0), fit(1), fit(2)];
    let predictions: Vec<Metrics> = space
        .iter()
        .map(|c| {
            let v = c.to_vector();
            Metrics {
                ipc: models[0].predict(&v),
                lifetime_years: models[1].predict(&v),
                energy_j: models[2].predict(&v),
            }
        })
        .collect();

    let objective = Objective::paper_default(8.0);
    let Some(best) = objective.select(&predictions) else {
        writeln!(
            out,
            "no predicted-feasible extended configuration; falling back"
        )?;
        return Ok(());
    };
    let chosen = space[best];
    let measured_choice = measure_ext(workload, scale, &chosen);

    // Reference: the best *paper-space* configuration among the sampled
    // plain configs (extensions off).
    let plain_best = space
        .iter()
        .filter(|c| c.retention_speedup.is_none() && c.turbo.is_none())
        .map(|c| (c, measure_ext(workload, scale, c)))
        .filter(|(_, m)| m.lifetime_years >= 8.0)
        .max_by(|a, b| a.1.ipc.total_cmp(&b.1.ipc))
        .map(|(c, m)| (*c, m));

    let mut t = Table::new(["selection", "config", "ipc", "lifetime_y"]);
    t.row([
        "MCT (extended)".to_string(),
        chosen.to_string(),
        format!("{:.3}", measured_choice.ipc),
        format!("{:.2}", measured_choice.lifetime_years.min(99.0)),
    ]);
    if let Some((c, m)) = plain_best {
        t.row([
            "best plain (measured)".to_string(),
            c.to_string(),
            format!("{:.3}", m.ipc),
            format!("{:.2}", m.lifetime_years.min(99.0)),
        ]);
    }
    write!(out, "{}", t.render())?;
    writeln!(
        out,
        "\nThe unchanged learn-predict-optimize pipeline handles the wider space —\n\
         the paper's generality claim (Section 8) made concrete."
    )?;
    Ok(())
}

/// Render the extension studies.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Extensions: retention & read-disturbance tradeoffs (scale: {scale}) ==\n"
    )?;
    tradeoff_curves(scale, out)?;
    mct_over_extended_space(scale, out)?;
    Ok(())
}
