//! Figure 2 (+ Table 7's accuracy/requirements columns): predictor
//! comparison — convergence rate and prediction accuracy vs number of
//! training samples.
//!
//! For each application, models train on N random sample configurations
//! from the sweep dataset and are scored by coefficient of determination
//! (paper Eq. 3) over the full remaining space; results average over the
//! ten applications. Offline/hierarchical models receive the other nine
//! applications as their offline corpus (leave-one-out).

use std::io::{self, Write};

use mct_core::{ConfigSpace, MetricsPredictor, ModelKind};
use mct_ml::coefficient_of_determination;
use mct_workloads::Workload;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::cache::{load_or_compute_sweeps, strided_configs, SweepDataset, SweepRequest};
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

const SAMPLE_SIZES: [usize; 5] = [10, 20, 40, 80, 160];
const OBJECTIVES: [&str; 3] = ["IPC", "lifetime", "energy"];

fn r2_for(
    kind: ModelKind,
    ds: &SweepDataset,
    corpus: &[&SweepDataset],
    n_samples: usize,
    dim: usize,
    seed: u64,
) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..ds.configs.len()).collect();
    idx.shuffle(&mut rng);
    let (train_idx, eval_idx) = idx.split_at(n_samples.min(idx.len() - 1));
    let pairs = ds.pairs();
    let train: Vec<_> = train_idx.iter().map(|&i| pairs[i]).collect();

    let mut predictor = MetricsPredictor::new(kind);
    if kind.needs_offline_data() {
        predictor = predictor.with_corpus(corpus.iter().map(|d| d.pairs()).collect());
    }
    predictor.fit(&train, None);
    let preds: Vec<f64> = eval_idx
        .iter()
        .map(|&i| predictor.predict(&ds.configs[i]).to_array()[dim])
        .collect();
    let truth: Vec<f64> = eval_idx
        .iter()
        .map(|&i| {
            let m = pairs[i].1.to_array()[dim];
            m.min(mct_core::predictor::LIFETIME_CLAMP_YEARS)
        })
        .collect();
    coefficient_of_determination(&preds, &truth)
}

/// Render Figure 2 and Table 7.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 2: convergence & accuracy of the predictors (scale: {scale}) =="
    )?;
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);
    let requests: Vec<SweepRequest> = Workload::all()
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    for (dim, obj) in OBJECTIVES.iter().enumerate() {
        writeln!(
            out,
            "\n-- objective: {obj} (mean R^2 over 10 applications) --\n"
        )?;
        let mut table = Table::new(
            std::iter::once("model".to_string())
                .chain(SAMPLE_SIZES.iter().map(|n| format!("n={n}")))
                .collect::<Vec<_>>(),
        );
        for kind in ModelKind::all() {
            let mut cells = vec![kind.label().to_string()];
            for &n in &SAMPLE_SIZES {
                let mut sum = 0.0;
                for (ai, ds) in datasets.iter().enumerate() {
                    let corpus: Vec<&SweepDataset> = datasets
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != ai)
                        .map(|(_, d)| d)
                        .collect();
                    sum += r2_for(kind, ds, &corpus, n, dim, 7 + n as u64);
                }
                cells.push(format!("{:.3}", sum / datasets.len() as f64));
            }
            table.row(cells);
        }
        write!(out, "{}", table.render())?;
    }

    writeln!(
        out,
        "\n== Table 7: data requirements (overheads: `cargo bench -p mct-bench --bench predictors`) ==\n"
    )?;
    let mut t7 = Table::new(["predictor", "needs offline data?", "needs online data?"]);
    t7.row(["offline", "yes", "no"]);
    t7.row(["linear model, no regularization", "no", "yes"]);
    t7.row(["linear model, lasso regularization", "no", "yes"]);
    t7.row(["quadratic model, no regularization", "no", "yes"]);
    t7.row(["quadratic model, lasso regularization", "no", "yes"]);
    t7.row(["gradient boosting", "no", "yes"]);
    t7.row(["hierarchical Bayesian model", "yes", "yes"]);
    write!(out, "{}", t7.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Fig. 2/Table 7): gradient boosting and quadratic-\n\
         lasso converge to high accuracy by ~80 samples; quadratic without\n\
         regularization converges slowly; offline is weakest on IPC/energy."
    )?;
    Ok(())
}
