//! Table 6: most effective quadratic features per application.
//!
//! Fits a lasso on the quadratic expansion of the 5 compressed features
//! (Section 4.4's manual clustering) against each application's sweep
//! data and ranks coefficients by magnitude.

use std::io::{self, Write};

use mct_core::{predictor::lasso_feature_report, ConfigSpace};
use mct_workloads::Workload;

use crate::cache::{load_or_compute_sweeps, strided_configs, SweepRequest};
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

const WORKLOADS: [Workload; 4] = [
    Workload::Lbm,
    Workload::Leslie3d,
    Workload::GemsFdtd,
    Workload::Stream,
];

/// Render Table 6.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Table 6: top-3 lasso-quadratic features (IPC objective, scale: {scale}) ==\n"
    )?;
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);

    let requests: Vec<SweepRequest> = WORKLOADS
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    let mut table = Table::new(["application", "top-3 most effective features"]);
    for (w, ds) in WORKLOADS.into_iter().zip(&datasets) {
        let report = lasso_feature_report(&ds.pairs(), 0, true, 0.002);
        let top: Vec<String> = report
            .iter()
            .take(3)
            .map(|(name, coef)| format!("{}{}", if *coef >= 0.0 { "+" } else { "-" }, name))
            .collect();
        table.row([w.name().to_string(), top.join(",  ")]);
    }
    write!(out, "{}", table.render())?;
    writeln!(
        out,
        "\nExpected shape (paper Table 6): top features involve fast_latency,\n\
         slow_latency and cancellation — including squares and knob pairs —\n\
         and differ across applications."
    )?;
    Ok(())
}
