//! Library implementations of every experiment stage.
//!
//! Each stage renders its report into a caller-provided writer: the
//! per-figure binaries pass a locked stdout, while `run_all` captures
//! each stage into a buffer (mirrored to `data/out/<stage>.txt`).
//! Running the stages in one process is what makes the pipeline-scale
//! machinery pay off — every stage shares the same warm-rig pool
//! ([`crate::runner::shared_rig`]), the same grain/derived caches
//! ([`crate::cache`]), and the same work-stealing scheduler
//! ([`crate::sched`]), none of which survive a process boundary.

use std::io::{self, Write};

use mct_core::{Controller, ControllerConfig, ModelKind, Objective, Outcome};
use mct_workloads::Workload;

use crate::cache::{derived_key, derived_store};
use crate::scale::Scale;

pub mod calibrate;
pub mod config_space;
pub mod extensions;
pub mod figure1;
pub mod figure10;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure6;
pub mod figure7;
pub mod figure8;
pub mod figure9;
pub mod table4;
pub mod table6;

/// A runnable experiment stage.
pub type StageFn = fn(Scale, &mut dyn Write) -> io::Result<()>;

/// Every stage in `run_all` order: (name, entry point).
pub const STAGES: &[(&str, StageFn)] = &[
    ("config_space", config_space::run),
    ("calibrate", calibrate::run),
    ("table4", table4::run),
    ("figure1", figure1::run),
    ("table6", table6::run),
    ("figure2", figure2::run),
    ("figure3", figure3::run),
    ("figure4", figure4::run),
    ("figure6", figure6::run),
    ("figure7", figure7::run),
    ("figure8", figure8::run),
    ("figure9", figure9::run),
    ("figure10", figure10::run),
    ("extensions", extensions::run),
];

/// Run the MCT controller for one (workload, model, budget, target)
/// through the derived-result cache: figure7 and figure9 request the
/// identical gradient-boosting run and share one execution, and a warm
/// rerun serves every controller outcome from disk.
pub(crate) fn cached_mct_outcome(
    w: Workload,
    kind: ModelKind,
    total_insts: u64,
    target_years: f64,
    scale: Scale,
    seed: u64,
) -> Outcome {
    let store = derived_store(scale, seed);
    let key = derived_key(
        &format!("mct_run/{}/{}", w.name(), kind.label()),
        seed,
        &[total_insts as f64, w.warmup_insts() as f64, target_years],
    );
    store.get_or_compute(key, || {
        let mut cfg = ControllerConfig::paper_scaled();
        cfg.model = kind;
        cfg.total_insts = total_insts;
        cfg.warmup_insts = w.warmup_insts();
        let mut controller = Controller::new(cfg, Objective::paper_default(target_years));
        controller.run(&mut w.source(seed))
    })
}

/// Geometric mean (shared by several figures' headline numbers).
pub(crate) fn geomean(vals: &[f64]) -> f64 {
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}
