//! Figure 8: sensitivity to lifetime targets (4–10 years).
//!
//! For four representative workloads, runs MCT (gradient boosting) and
//! the brute-force ideal under lifetime targets 4, 6, 8 and 10 years.
//! Ideal search uses the wear-quota-free sweep (as in Table 4): the
//! cached quota-on half enforces a fixed 8-year quota and would bias
//! other targets.

use std::io::{self, Write};

use mct_core::{ConfigSpace, ModelKind, Objective};
use mct_workloads::Workload;

use crate::cache::{cached_measure, load_or_compute_sweeps, strided_configs, SweepRequest};
use crate::figures::cached_mct_outcome;
use crate::ideal::ideal_for;
use crate::report::Table;
use crate::runner::EXPERIMENT_SEED;
use crate::scale::Scale;

const WORKLOADS: [Workload; 4] = [
    Workload::Lbm,
    Workload::Leslie3d,
    Workload::GemsFdtd,
    Workload::Stream,
];

/// Render Figure 8.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Figure 8: sensitivity to lifetime targets (scale: {scale}) ==\n"
    )?;
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);

    let requests: Vec<SweepRequest> = WORKLOADS
        .into_iter()
        .map(|w| SweepRequest {
            workload: w,
            configs: configs.clone(),
        })
        .collect();
    let datasets = load_or_compute_sweeps(&requests, scale, EXPERIMENT_SEED);

    for (w, ds) in WORKLOADS.into_iter().zip(&datasets) {
        let mut table = Table::new([
            "target",
            "mct ipc",
            "mct life",
            "ideal ipc",
            "ideal life",
            "mct/ideal ipc",
        ]);
        for target in [4.0, 6.0, 8.0, 10.0] {
            let ideal = ideal_for(ds, &Objective::paper_default(target));
            let outcome = cached_mct_outcome(
                w,
                ModelKind::GradientBoosting,
                scale.controller_insts() / 2,
                target,
                scale,
                EXPERIMENT_SEED,
            );
            // Deployment measurement on the shared rig (see figure7).
            let m = cached_measure(w, &outcome.chosen_config, scale, EXPERIMENT_SEED);
            table.row([
                format!("{target:.0}y"),
                format!("{:.3}", m.ipc),
                format!("{:.1}", m.lifetime_years.min(99.0)),
                format!("{:.3}", ideal.metrics.ipc),
                format!("{:.1}", ideal.metrics.lifetime_years.min(99.0)),
                format!("{:.1}%", 100.0 * m.ipc / ideal.metrics.ipc),
            ]);
        }
        writeln!(out, "-- {} --", w.name())?;
        write!(out, "{}", table.render())?;
        writeln!(out)?;
    }
    writeln!(
        out,
        "Expected shape (paper Fig. 8): higher lifetime targets reduce the\n\
         achievable IPC for both MCT and the ideal; MCT tracks the trend, and\n\
         the wear-quota fixup keeps lifetimes near the target even when the\n\
         prediction overestimated."
    )?;
    Ok(())
}
