//! Work-stealing grain scheduler.
//!
//! The pipeline flattens every sweep into independent *measurement
//! grains* (workload × config × budget); this module spreads a batch of
//! grains across OS threads. Each worker owns a deque of grain indices
//! dealt round-robin; a worker that drains its own deque steals the
//! back half of a victim's, so a run of slow grains (one workload's
//! configs are not uniformly priced) cannot strand work on one core.
//!
//! The deal/steal/reassemble engine itself lives in [`mct_ml::par`]
//! (the GBRT split search fans over the same scheduler, and `mct-ml`
//! sits below this crate in the dependency order); this module owns the
//! pipeline-facing policy around it: `MCT_WORKERS` resolution and the
//! per-worker executed/stolen/busy accounting recorded into
//! [`mct_telemetry::pipeline_stats`] for `mct report`.
//!
//! Results are keyed by input index and reassembled after the join, so
//! output order — and therefore every downstream figure — is identical
//! no matter how the grains were scheduled or stolen.

use std::num::NonZeroUsize;

use mct_telemetry::{pipeline_stats, WorkerStat};

/// How the worker count was decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkersPlan {
    /// Worker threads to use.
    pub workers: usize,
    /// Why a set-but-unusable `MCT_WORKERS` value was ignored, if it was.
    /// `None` when the variable was unset or parsed cleanly.
    pub fallback_reason: Option<String>,
}

/// Worker count: `MCT_WORKERS` (if set to a positive integer) else the
/// machine's available parallelism.
///
/// A set-but-garbage `MCT_WORKERS` (`0`, `-3`, `lots`, empty) must not
/// be silently swallowed — the user asked for a specific parallelism and
/// is getting something else. The rejection is reported once on stderr
/// and recorded into [`mct_telemetry::pipeline_stats`] so it surfaces in
/// `mct report`.
#[must_use]
pub fn default_workers() -> usize {
    let plan = workers_plan(std::env::var("MCT_WORKERS").ok().as_deref());
    if let Some(reason) = &plan.fallback_reason {
        pipeline_stats().set_workers_fallback(reason);
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| eprintln!("warning: {reason}"));
    }
    plan.workers
}

/// [`default_workers`] with the env value injected and the fallback
/// decision made visible (testable).
#[must_use]
pub fn workers_plan(env: Option<&str>) -> WorkersPlan {
    let machine = || std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    match env {
        None => WorkersPlan {
            workers: machine(),
            fallback_reason: None,
        },
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(w) if w >= 1 => WorkersPlan {
                workers: w,
                fallback_reason: None,
            },
            _ => {
                let workers = machine();
                WorkersPlan {
                    workers,
                    fallback_reason: Some(format!(
                        "MCT_WORKERS={raw:?} rejected (must be a positive integer); \
                         using {workers} machine thread(s)"
                    )),
                }
            }
        },
    }
}

/// The worker count alone, fallback reason discarded (legacy callers).
#[must_use]
pub fn workers_from(env: Option<&str>) -> usize {
    workers_plan(env).workers
}

/// Run `f` over every item on `workers` work-stealing threads and
/// return the results in input order.
///
/// Grain index `i` is initially dealt to worker `i % workers`; a grain
/// counts as *stolen* when a different worker ends up executing it.
/// With `workers == 1` (or one item) the batch runs inline with no
/// thread spawns. Either way one scheduler round is recorded into the
/// process pipeline stats.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn run_grains<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (out, tallies) = mct_ml::par::run_grains_tallied(items, workers, f);
    if tallies.is_empty() {
        return out;
    }
    let stats: Vec<WorkerStat> = tallies
        .iter()
        .map(|t| WorkerStat {
            executed: t.executed,
            stolen: t.stolen,
            busy_us: t.busy_us,
            wall_us: t.wall_us,
        })
        .collect();
    let total_stolen: u64 = tallies.iter().map(|t| t.stolen).sum();
    pipeline_stats().record_round(&stats);
    pipeline_stats().add_grains_executed(items.len() as u64);
    if total_stolen > 0 {
        pipeline_stats().add_grains_stolen(total_stolen);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_all_shapes() {
        for n in [1usize, 2, 3, 7, 13, 64, 100] {
            for workers in [1usize, 2, 3, 8, 200] {
                let items: Vec<usize> = (0..n).collect();
                let got = run_grains(&items, workers, |&x| x * 3 + 1);
                let want: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
                assert_eq!(got, want, "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: [u32; 0] = [];
        assert!(run_grains(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn propagates_worker_panics() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            run_grains(&items, 4, |&x| {
                assert!(x != 17, "injected failure");
                x
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn blocked_owner_has_its_queue_stolen() {
        // Worker 0 owns indices {0, 4, ..., 60} and blocks on grain 0
        // until every other grain has finished — so its remaining 15
        // grains can only complete by being stolen. Stealing is proved
        // by thread identity (the thread that ran grain 0 spun the whole
        // round, so no other worker-0 grain can carry its id); the
        // global counters only get lower bounds because concurrently
        // running tests share them.
        let n = 64usize;
        let workers = 4;
        let done = AtomicUsize::new(0);
        let items: Vec<usize> = (0..n).collect();
        let before = pipeline_stats().snapshot();
        let got = run_grains(&items, workers, |&x| {
            if x == 0 {
                while done.load(Ordering::SeqCst) < n - 1 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::SeqCst);
            (x, std::thread::current().id())
        });
        let values: Vec<usize> = got.iter().map(|(x, _)| *x).collect();
        assert_eq!(values, items);
        let blocker = got[0].1;
        for (idx, tid) in &got[1..] {
            if idx % workers == 0 {
                assert_ne!(
                    *tid, blocker,
                    "grain {idx} must be stolen off the blocked worker"
                );
            }
        }
        let after = pipeline_stats().snapshot();
        assert!(after.grains_executed - before.grains_executed >= n as u64);
        assert!(
            after.grains_stolen - before.grains_stolen >= 15,
            "worker 0's 15 queued grains must all be stolen"
        );
    }

    #[test]
    fn records_round_and_executed_counts() {
        // Lower bounds only: the pipeline counters are process-global
        // and other tests run scheduler rounds concurrently.
        let before = pipeline_stats().snapshot();
        let items: Vec<u32> = (0..10).collect();
        let _ = run_grains(&items, 3, |&x| x);
        let _ = run_grains(&items[..1], 1, |&x| x);
        let after = pipeline_stats().snapshot();
        assert!(after.sched_rounds - before.sched_rounds >= 2);
        assert!(after.grains_executed - before.grains_executed >= 11);
        let executed: u64 = after.workers.iter().map(|w| w.executed).sum();
        let executed_before: u64 = before.workers.iter().map(|w| w.executed).sum();
        assert!(executed - executed_before >= 11);
    }

    #[test]
    fn workers_from_env_parsing() {
        assert_eq!(workers_from(Some("3")), 3);
        assert_eq!(workers_from(Some("1")), 1);
        let fallback = workers_from(None);
        assert!(fallback >= 1);
        assert_eq!(workers_from(Some("0")), fallback, "zero is rejected");
        assert_eq!(workers_from(Some("lots")), fallback, "junk is rejected");
    }

    #[test]
    fn workers_plan_reports_why_garbage_was_rejected() {
        // Clean values carry no reason.
        assert_eq!(workers_plan(Some("4")).fallback_reason, None);
        assert_eq!(
            workers_plan(Some(" 2 ")).workers,
            2,
            "whitespace is tolerated"
        );
        assert_eq!(workers_plan(None).fallback_reason, None);
        // Garbage falls back loudly, naming the offending value.
        for bad in ["0", "-3", "lots", "", "1.5"] {
            let plan = workers_plan(Some(bad));
            assert!(plan.workers >= 1);
            let reason = plan
                .fallback_reason
                .unwrap_or_else(|| panic!("MCT_WORKERS={bad:?} must produce a fallback reason"));
            assert!(reason.contains(&format!("{bad:?}")), "{reason}");
            assert!(reason.contains("positive integer"), "{reason}");
        }
    }

    #[test]
    fn rejected_workers_env_lands_in_pipeline_stats() {
        // default_workers() reads the real env, so drive the recording
        // path directly with a plan the parser rejected.
        let plan = workers_plan(Some("banana"));
        let reason = plan.fallback_reason.expect("rejected");
        pipeline_stats().set_workers_fallback(&reason);
        let snap = pipeline_stats().snapshot();
        // First-reason-wins: another test may have recorded first; either
        // way the snapshot carries *a* rejection reason for the report.
        assert!(
            snap.workers_fallback.contains("rejected"),
            "{}",
            snap.workers_fallback
        );
    }
}
