//! The sweep engine: measure one configuration, or brute-force many.
//!
//! Warm-state cloning makes the "ideal policy" search tractable: each
//! workload is warmed once under the default policy, then the warmed
//! system (and the workload source position) is cloned per candidate
//! configuration, so the per-configuration cost is just the detailed
//! window. All candidates therefore measure over exactly the same access
//! stream — the paper's per-benchmark methodology.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mct_core::NvmConfig;
use mct_sim::rigset::{RigSet, DEFAULT_SLICE_INSTS};
use mct_sim::stats::Metrics;
use mct_sim::system::{System, SystemConfig};
use mct_sim::trace::AccessSource;
use mct_telemetry::pipeline_stats;
use mct_workloads::{Workload, WorkloadSource};

use crate::scale::Scale;

/// Deterministic seed shared by all experiments (the paper's venue year).
pub const EXPERIMENT_SEED: u64 = 2017;

/// A warmed system + source snapshot, cloneable per candidate config.
#[derive(Debug, Clone)]
pub struct WarmedRig {
    sys: System,
    src: WorkloadSource,
    detailed_insts: u64,
}

impl WarmedRig {
    /// Warm up `workload` under the default policy.
    #[must_use]
    pub fn new(workload: Workload, scale: Scale, seed: u64) -> WarmedRig {
        WarmedRig::with_budget(
            workload,
            seed,
            workload.detailed_insts(scale.detailed_factor()),
        )
    }

    /// Warm up `workload` with an explicit detailed-window budget (the
    /// extension studies run off-scale budgets).
    #[must_use]
    pub fn with_budget(workload: Workload, seed: u64, detailed_insts: u64) -> WarmedRig {
        // mct-tidy: allow(D002) -- pipeline-stats accounting only; never feeds results
        let t0 = Instant::now();
        let mut sys = System::new(
            SystemConfig::default(),
            NvmConfig::default_config().to_policy(),
        );
        let mut src = workload.source(seed);
        sys.warmup(&mut src, workload.warmup_insts());
        let stats = pipeline_stats();
        stats.add_rig_warmups(1);
        stats.add_warmup_us(t0.elapsed().as_micros() as u64);
        stats.add_snapshot_bytes(sys.snapshot_bytes() as u64);
        WarmedRig {
            sys,
            src,
            detailed_insts,
        }
    }

    /// Measure one configuration over the shared detailed window.
    #[must_use]
    pub fn measure(&self, cfg: &NvmConfig) -> Metrics {
        self.measure_policy(cfg.to_policy())
    }

    /// Measure an arbitrary memory policy over the shared detailed
    /// window (the extension studies build policies outside the paper's
    /// configuration space).
    #[must_use]
    pub fn measure_policy(&self, policy: mct_sim::policy::MellowPolicy) -> Metrics {
        // mct-tidy: allow(D002) -- pipeline-stats accounting only; never feeds results
        let t0 = Instant::now();
        let mut sys = self.sys.clone();
        let mut src = self.src.clone();
        let stats = pipeline_stats();
        stats.add_rig_clones(1);
        stats.add_clone_us(t0.elapsed().as_micros() as u64);
        sys.set_policy(policy);
        sys.reset_stats();
        sys.run_window(&mut src, self.detailed_insts);
        sys.finalize().metrics()
    }

    /// Measure several configurations in one interleaved pass over the
    /// shared detailed window ([`mct_sim::RigSet`]): the trace events
    /// are generated once and replayed through every candidate's clone,
    /// instead of once per candidate. Results are bit-identical to
    /// calling [`WarmedRig::measure`] per config — same clone, same
    /// policy swap, same reset, and (by the rig-set slice argument) the
    /// same event sequence in the same order.
    #[must_use]
    pub fn measure_batch(&self, cfgs: &[NvmConfig]) -> Vec<Metrics> {
        self.measure_batch_with_slice(cfgs, DEFAULT_SLICE_INSTS)
    }

    /// [`WarmedRig::measure_batch`] with an explicit interleave slice
    /// (benchmarks tune it; results are slice-independent by the rig-set
    /// bit-identity argument).
    #[must_use]
    pub fn measure_batch_with_slice(&self, cfgs: &[NvmConfig], slice_insts: u64) -> Vec<Metrics> {
        if cfgs.is_empty() {
            return Vec::new();
        }
        // mct-tidy: allow(D002) -- pipeline-stats accounting only; never feeds results
        let t0 = Instant::now();
        let systems: Vec<System> = cfgs
            .iter()
            .map(|cfg| {
                let mut sys = self.sys.clone();
                sys.set_policy(cfg.to_policy());
                sys.reset_stats();
                sys
            })
            .collect();
        let stats = pipeline_stats();
        stats.add_rig_clones(cfgs.len() as u64);
        stats.add_clone_us(t0.elapsed().as_micros() as u64);
        let mut src = self.src.clone();
        let mut set = RigSet::new(systems);
        set.run_window_shared(&mut src, self.detailed_insts, slice_insts);
        set.into_systems()
            .into_iter()
            .map(|mut sys| sys.finalize().metrics())
            .collect()
    }

    /// Arm a deterministic fault plan on the warmed system. Every
    /// per-candidate clone inherits the armed runtime, so all candidates
    /// measure under exactly the same fault schedule (and the same access
    /// stream). Arming an *empty* plan keeps measurements bit-identical
    /// to an unarmed rig — the differential no-op guarantee.
    ///
    /// # Panics
    /// Panics if the plan fails validation.
    pub fn arm_faults(&mut self, plan: &mct_sim::FaultPlan) {
        self.sys.arm_faults(plan);
    }

    /// The detailed window length in instructions.
    #[must_use]
    pub fn detailed_insts(&self) -> u64 {
        self.detailed_insts
    }
}

/// Identity of a shared warm snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RigKey {
    workload: Workload,
    seed: u64,
    detailed_insts: u64,
}

/// A lazily-warmed slot in the shared rig pool.
///
/// The pool hands out the *cell* immediately; the actual warmup runs on
/// first [`RigCell::rig`] call. Concurrent first callers block on the
/// same `OnceLock`, so each (workload, seed, budget) is warmed exactly
/// once per process no matter how many figures or workers ask for it.
#[derive(Debug)]
pub struct RigCell {
    key: RigKey,
    cell: OnceLock<WarmedRig>,
}

impl RigCell {
    /// The warmed rig, warming it on first use.
    pub fn rig(&self) -> &WarmedRig {
        self.cell.get_or_init(|| {
            WarmedRig::with_budget(self.key.workload, self.key.seed, self.key.detailed_insts)
        })
    }
}

/// The process-wide warm snapshot pool: one [`WarmedRig`] per
/// (workload, seed, detailed budget), shared by every figure.
fn rig_pool() -> &'static Mutex<HashMap<RigKey, Arc<RigCell>>> {
    static POOL: OnceLock<Mutex<HashMap<RigKey, Arc<RigCell>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Fetch (or create) the shared warm-rig cell for a workload at an
/// explicit detailed budget. The warmup itself is deferred to the first
/// [`RigCell::rig`] call, so grabbing cells is cheap. Asking for a cell
/// that is already warmed counts as a `rig_reuses` — one figure riding
/// on another's warmup.
///
/// # Panics
/// Panics if the pool mutex is poisoned.
#[must_use]
pub fn shared_rig(workload: Workload, seed: u64, detailed_insts: u64) -> Arc<RigCell> {
    let key = RigKey {
        workload,
        seed,
        detailed_insts,
    };
    let cell = Arc::clone(
        rig_pool()
            .lock()
            .expect("rig pool lock")
            .entry(key)
            .or_insert_with(|| {
                Arc::new(RigCell {
                    key,
                    cell: OnceLock::new(),
                })
            }),
    );
    if cell.cell.get().is_some() {
        pipeline_stats().add_rig_reuses(1);
    }
    cell
}

/// Measure a single configuration on a workload (fresh warmup).
#[must_use]
pub fn measure_one(workload: Workload, cfg: &NvmConfig, scale: Scale, seed: u64) -> Metrics {
    WarmedRig::new(workload, scale, seed).measure(cfg)
}

/// Map `f` over `items` on `threads` worker threads, preserving input
/// order in the output.
///
/// Since the scheduler rework this is a thin alias for
/// [`crate::sched::run_grains`]: items are dealt round-robin to
/// per-worker deques and idle workers steal the back half of a victim's
/// queue, so a run of slow items cannot strand work on one core. No
/// slot can be skipped — every grain is executed exactly once, a
/// panicking worker propagates through [`std::thread::scope`], and the
/// index-keyed reassembly makes output order (and every downstream
/// figure) independent of scheduling.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    crate::sched::run_grains(items, threads, f)
}

/// Brute-force sweep: metrics for every configuration in `configs`,
/// parallelized over the available cores.
#[must_use]
pub fn sweep(workload: Workload, configs: &[NvmConfig], scale: Scale, seed: u64) -> Vec<Metrics> {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    sweep_with_threads(workload, configs, scale, seed, threads)
}

/// How many candidate configs one worker grain drives through a shared
/// [`RigSet`] event loop. Larger batches amortize event generation over
/// more candidates but coarsen the work-stealing grain.
const SWEEP_RIG_BATCH: usize = 8;

/// [`sweep`] with an explicit worker count (determinism tests compare
/// thread counts; production callers use [`sweep`]).
///
/// Workers are handed [`RigSet`] batches of [`SWEEP_RIG_BATCH`] configs
/// rather than single configs: each grain interleaves its candidates
/// through one event loop ([`WarmedRig::measure_batch`]), generating the
/// shared trace once per batch instead of once per candidate. Batches
/// partition `configs` in order and each batch's results come back in
/// order, so output order — and, since `measure_batch` is bit-identical
/// to `measure`, every metric bit — is unchanged from the per-config
/// sweep at any thread count.
#[must_use]
pub fn sweep_with_threads(
    workload: Workload,
    configs: &[NvmConfig],
    scale: Scale,
    seed: u64,
    threads: usize,
) -> Vec<Metrics> {
    let rig = WarmedRig::new(workload, scale, seed);
    let batches: Vec<&[NvmConfig]> = configs.chunks(SWEEP_RIG_BATCH).collect();
    par_map(&batches, threads, |batch| rig.measure_batch(batch))
        .into_iter()
        .flatten()
        .collect()
}

/// A tiny helper for replaying the shared stream through an arbitrary
/// source type in tests.
pub fn run_detailed<S: AccessSource>(sys: &mut System, src: &mut S, insts: u64) -> Metrics {
    sys.reset_stats();
    sys.run_window(src, insts);
    sys.finalize().metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_constant_is_fixed() {
        // Guard against accidental edits: the seed participates in every
        // cached dataset's identity.
        assert_eq!(EXPERIMENT_SEED, 2017);
    }

    #[test]
    fn warmed_rig_measures_deterministically() {
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let a = rig.measure(&NvmConfig::default_config());
        let b = rig.measure(&NvmConfig::default_config());
        assert_eq!(a, b, "cloned measurements must be identical");
    }

    #[test]
    fn different_configs_differ() {
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let fast = rig.measure(&NvmConfig::default_config());
        let slow = rig.measure(&NvmConfig {
            fast_latency: 4.0,
            slow_latency: 4.0,
            ..NvmConfig::default_config()
        });
        assert!(slow.lifetime_years > fast.lifetime_years * 4.0);
        assert!(slow.ipc <= fast.ipc);
    }

    #[test]
    fn par_map_preserves_order_for_all_shapes() {
        // Regression for the zeroed-row bug: lengths that leave ragged
        // tail chunks must still fill every output slot, in input order.
        for n in [1usize, 2, 3, 7, 13, 64, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let items: Vec<usize> = (0..n).collect();
                let got = par_map(&items, threads, |&x| x * 2 + 1);
                let want: Vec<usize> = items.iter().map(|&x| x * 2 + 1).collect();
                assert_eq!(got, want, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_empty_input_yields_empty_output() {
        let empty: [u32; 0] = [];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        // A panicking worker must fail the whole call — never return a
        // partially-zeroed result vector.
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, 4, |&x| {
                assert!(x != 17, "injected failure");
                x
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn measure_batch_matches_measure_bit_for_bit() {
        // Ragged batch sizes included: the interleaved rig-set pass must
        // reproduce the sequential per-config measurement exactly.
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let configs: Vec<NvmConfig> = [1.0f64, 1.5, 2.0, 2.5, 3.0]
            .iter()
            .map(|&lat| NvmConfig {
                slow_latency: lat.max(1.0),
                ..NvmConfig::default_config()
            })
            .collect();
        for n in [1usize, 3, 5] {
            let batch = rig.measure_batch(&configs[..n]);
            for (cfg, got) in configs[..n].iter().zip(&batch) {
                assert_eq!(*got, rig.measure(cfg), "n={n}");
            }
        }
        assert!(rig.measure_batch(&[]).is_empty());
    }

    #[test]
    fn sweep_matches_individual_measurements() {
        let configs = vec![
            NvmConfig::default_config(),
            NvmConfig::static_baseline(),
            NvmConfig::static_baseline().without_wear_quota(),
        ];
        let rig = WarmedRig::new(Workload::Gups, Scale::Quick, 2);
        let swept = sweep(Workload::Gups, &configs, Scale::Quick, 2);
        for (cfg, m) in configs.iter().zip(&swept) {
            assert_eq!(*m, rig.measure(cfg));
        }
    }
}
