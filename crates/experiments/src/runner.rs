//! The sweep engine: measure one configuration, or brute-force many.
//!
//! Warm-state cloning makes the "ideal policy" search tractable: each
//! workload is warmed once under the default policy, then the warmed
//! system (and the workload source position) is cloned per candidate
//! configuration, so the per-configuration cost is just the detailed
//! window. All candidates therefore measure over exactly the same access
//! stream — the paper's per-benchmark methodology.

use mct_core::NvmConfig;
use mct_sim::stats::Metrics;
use mct_sim::system::{System, SystemConfig};
use mct_sim::trace::AccessSource;
use mct_workloads::{Workload, WorkloadSource};

use crate::scale::Scale;

/// Deterministic seed shared by all experiments (the paper's venue year).
pub const EXPERIMENT_SEED: u64 = 2017;

/// A warmed system + source snapshot, cloneable per candidate config.
#[derive(Debug, Clone)]
pub struct WarmedRig {
    sys: System,
    src: WorkloadSource,
    detailed_insts: u64,
}

impl WarmedRig {
    /// Warm up `workload` under the default policy.
    #[must_use]
    pub fn new(workload: Workload, scale: Scale, seed: u64) -> WarmedRig {
        let mut sys = System::new(
            SystemConfig::default(),
            NvmConfig::default_config().to_policy(),
        );
        let mut src = workload.source(seed);
        sys.warmup(&mut src, workload.warmup_insts());
        WarmedRig {
            sys,
            src,
            detailed_insts: workload.detailed_insts(scale.detailed_factor()),
        }
    }

    /// Measure one configuration over the shared detailed window.
    #[must_use]
    pub fn measure(&self, cfg: &NvmConfig) -> Metrics {
        let mut sys = self.sys.clone();
        let mut src = self.src.clone();
        sys.set_policy(cfg.to_policy());
        sys.reset_stats();
        sys.run_window(&mut src, self.detailed_insts);
        sys.finalize().metrics()
    }

    /// The detailed window length in instructions.
    #[must_use]
    pub fn detailed_insts(&self) -> u64 {
        self.detailed_insts
    }
}

/// Measure a single configuration on a workload (fresh warmup).
#[must_use]
pub fn measure_one(workload: Workload, cfg: &NvmConfig, scale: Scale, seed: u64) -> Metrics {
    WarmedRig::new(workload, scale, seed).measure(cfg)
}

/// Map `f` over `items` on `threads` scoped threads, writing results
/// lock-free into disjoint output chunks.
///
/// Chunks are sized at ~1/8 of an even per-thread share (work-stealing-
/// friendly granularity without a queue) and dealt round-robin so a run
/// of slow items does not land on one worker. Output order matches input
/// order exactly.
///
/// Unlike a shared-results + claim-counter pool, no slot can be skipped:
/// every input chunk is owned by exactly one worker, a panicking worker
/// propagates through [`std::thread::scope`], and any unfilled slot (a
/// logic bug) is caught by the final unwrap instead of silently yielding
/// a zeroed row.
///
/// # Panics
/// Propagates any panic raised by `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads * 8).max(1);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let f = &f;
        // One worker's share: (input chunk, matching output chunk) pairs.
        type Share<'a, T, R> = Vec<(&'a [T], &'a mut [Option<R>])>;
        let mut assignments: Vec<Share<'_, T, R>> = (0..threads).map(|_| Vec::new()).collect();
        for (ci, pair) in items
            .chunks(chunk)
            .zip(results.chunks_mut(chunk))
            .enumerate()
        {
            assignments[ci % threads].push(pair);
        }
        for worker_chunks in assignments {
            scope.spawn(move || {
                for (in_chunk, out_chunk) in worker_chunks {
                    for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("par_map filled every slot"))
        .collect()
}

/// Brute-force sweep: metrics for every configuration in `configs`,
/// parallelized over the available cores.
#[must_use]
pub fn sweep(workload: Workload, configs: &[NvmConfig], scale: Scale, seed: u64) -> Vec<Metrics> {
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    sweep_with_threads(workload, configs, scale, seed, threads)
}

/// [`sweep`] with an explicit worker count (determinism tests compare
/// thread counts; production callers use [`sweep`]).
#[must_use]
pub fn sweep_with_threads(
    workload: Workload,
    configs: &[NvmConfig],
    scale: Scale,
    seed: u64,
    threads: usize,
) -> Vec<Metrics> {
    let rig = WarmedRig::new(workload, scale, seed);
    par_map(configs, threads, |cfg| rig.measure(cfg))
}

/// A tiny helper for replaying the shared stream through an arbitrary
/// source type in tests.
pub fn run_detailed<S: AccessSource>(sys: &mut System, src: &mut S, insts: u64) -> Metrics {
    sys.reset_stats();
    sys.run_window(src, insts);
    sys.finalize().metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_constant_is_fixed() {
        // Guard against accidental edits: the seed participates in every
        // cached dataset's identity.
        assert_eq!(EXPERIMENT_SEED, 2017);
    }

    #[test]
    fn warmed_rig_measures_deterministically() {
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let a = rig.measure(&NvmConfig::default_config());
        let b = rig.measure(&NvmConfig::default_config());
        assert_eq!(a, b, "cloned measurements must be identical");
    }

    #[test]
    fn different_configs_differ() {
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let fast = rig.measure(&NvmConfig::default_config());
        let slow = rig.measure(&NvmConfig {
            fast_latency: 4.0,
            slow_latency: 4.0,
            ..NvmConfig::default_config()
        });
        assert!(slow.lifetime_years > fast.lifetime_years * 4.0);
        assert!(slow.ipc <= fast.ipc);
    }

    #[test]
    fn par_map_preserves_order_for_all_shapes() {
        // Regression for the zeroed-row bug: lengths that leave ragged
        // tail chunks must still fill every output slot, in input order.
        for n in [1usize, 2, 3, 7, 13, 64, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let items: Vec<usize> = (0..n).collect();
                let got = par_map(&items, threads, |&x| x * 2 + 1);
                let want: Vec<usize> = items.iter().map(|&x| x * 2 + 1).collect();
                assert_eq!(got, want, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn par_map_empty_input_yields_empty_output() {
        let empty: [u32; 0] = [];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn par_map_propagates_worker_panics() {
        // A panicking worker must fail the whole call — never return a
        // partially-zeroed result vector.
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(&items, 4, |&x| {
                assert!(x != 17, "injected failure");
                x
            })
        });
        assert!(result.is_err(), "panic must propagate to the caller");
    }

    #[test]
    fn sweep_matches_individual_measurements() {
        let configs = vec![
            NvmConfig::default_config(),
            NvmConfig::static_baseline(),
            NvmConfig::static_baseline().without_wear_quota(),
        ];
        let rig = WarmedRig::new(Workload::Gups, Scale::Quick, 2);
        let swept = sweep(Workload::Gups, &configs, Scale::Quick, 2);
        for (cfg, m) in configs.iter().zip(&swept) {
            assert_eq!(*m, rig.measure(cfg));
        }
    }
}
