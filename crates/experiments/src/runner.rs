//! The sweep engine: measure one configuration, or brute-force many.
//!
//! Warm-state cloning makes the "ideal policy" search tractable: each
//! workload is warmed once under the default policy, then the warmed
//! system (and the workload source position) is cloned per candidate
//! configuration, so the per-configuration cost is just the detailed
//! window. All candidates therefore measure over exactly the same access
//! stream — the paper's per-benchmark methodology.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use mct_core::NvmConfig;
use mct_sim::stats::Metrics;
use mct_sim::system::{System, SystemConfig};
use mct_sim::trace::AccessSource;
use mct_workloads::{Workload, WorkloadSource};

use crate::scale::Scale;

/// Deterministic seed shared by all experiments (the paper's venue year).
pub const EXPERIMENT_SEED: u64 = 2017;

/// A warmed system + source snapshot, cloneable per candidate config.
#[derive(Debug, Clone)]
pub struct WarmedRig {
    sys: System,
    src: WorkloadSource,
    detailed_insts: u64,
}

impl WarmedRig {
    /// Warm up `workload` under the default policy.
    #[must_use]
    pub fn new(workload: Workload, scale: Scale, seed: u64) -> WarmedRig {
        let mut sys = System::new(
            SystemConfig::default(),
            NvmConfig::default_config().to_policy(),
        );
        let mut src = workload.source(seed);
        sys.warmup(&mut src, workload.warmup_insts());
        WarmedRig {
            sys,
            src,
            detailed_insts: workload.detailed_insts(scale.detailed_factor()),
        }
    }

    /// Measure one configuration over the shared detailed window.
    #[must_use]
    pub fn measure(&self, cfg: &NvmConfig) -> Metrics {
        let mut sys = self.sys.clone();
        let mut src = self.src.clone();
        sys.set_policy(cfg.to_policy());
        sys.reset_stats();
        sys.run_window(&mut src, self.detailed_insts);
        sys.finalize().metrics()
    }

    /// The detailed window length in instructions.
    #[must_use]
    pub fn detailed_insts(&self) -> u64 {
        self.detailed_insts
    }
}

/// Measure a single configuration on a workload (fresh warmup).
#[must_use]
pub fn measure_one(workload: Workload, cfg: &NvmConfig, scale: Scale, seed: u64) -> Metrics {
    WarmedRig::new(workload, scale, seed).measure(cfg)
}

/// Brute-force sweep: metrics for every configuration in `configs`,
/// parallelized over the available cores.
#[must_use]
pub fn sweep(workload: Workload, configs: &[NvmConfig], scale: Scale, seed: u64) -> Vec<Metrics> {
    let rig = WarmedRig::new(workload, scale, seed);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let results = Mutex::new(vec![
        Metrics {
            ipc: 0.0,
            lifetime_years: 0.0,
            energy_j: 0.0
        };
        configs.len()
    ]);
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let m = rig.measure(&configs[i]);
                results.lock()[i] = m;
            });
        }
    })
    .expect("sweep worker panicked");
    results.into_inner()
}

/// A tiny helper for replaying the shared stream through an arbitrary
/// source type in tests.
pub fn run_detailed<S: AccessSource>(sys: &mut System, src: &mut S, insts: u64) -> Metrics {
    sys.reset_stats();
    sys.run_window(src, insts);
    sys.finalize().metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_constant_is_fixed() {
        // Guard against accidental edits: the seed participates in every
        // cached dataset's identity.
        assert_eq!(EXPERIMENT_SEED, 2017);
    }

    #[test]
    fn warmed_rig_measures_deterministically() {
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let a = rig.measure(&NvmConfig::default_config());
        let b = rig.measure(&NvmConfig::default_config());
        assert_eq!(a, b, "cloned measurements must be identical");
    }

    #[test]
    fn different_configs_differ() {
        let rig = WarmedRig::new(Workload::Stream, Scale::Quick, 1);
        let fast = rig.measure(&NvmConfig::default_config());
        let slow = rig.measure(&NvmConfig {
            fast_latency: 4.0,
            slow_latency: 4.0,
            ..NvmConfig::default_config()
        });
        assert!(slow.lifetime_years > fast.lifetime_years * 4.0);
        assert!(slow.ipc <= fast.ipc);
    }

    #[test]
    fn sweep_matches_individual_measurements() {
        let configs = vec![
            NvmConfig::default_config(),
            NvmConfig::static_baseline(),
            NvmConfig::static_baseline().without_wear_quota(),
        ];
        let rig = WarmedRig::new(Workload::Gups, Scale::Quick, 2);
        let swept = sweep(Workload::Gups, &configs, Scale::Quick, 2);
        for (cfg, m) in configs.iter().zip(&swept) {
            assert_eq!(*m, rig.measure(cfg));
        }
    }
}
