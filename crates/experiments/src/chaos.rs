//! Chaos scenario sweep: MCT vs the static baseline under injected
//! faults.
//!
//! Each scenario builds a seeded [`FaultPlan`] (the deterministic
//! fault-injection layer in `mct-sim`) and measures two things under the
//! *same* fault schedule and access stream:
//!
//! * the static-safe baseline on a warmed rig with the plan armed
//!   ([`WarmedRig::arm_faults`]), and
//! * the full MCT controller with the plan in its
//!   [`ControllerConfig::fault_plan`], so the degradation ladder
//!   (re-sample → refit → revert-to-static) is exercised end to end.
//!
//! The sweep reports realized IPC and lifetime for both, plus how often
//! the controller's health checker demoted the learned choice — the
//! graceful-degradation story the paper's Section 5.4 fallback only
//! sketches.

use std::io::{self, Write};

use mct_core::{Controller, ControllerConfig, NvmConfig, Objective, Outcome};
use mct_sim::fault::{FaultEvent, FaultPlan};
use mct_workloads::Workload;

use crate::report::Table;
use crate::runner::{WarmedRig, EXPERIMENT_SEED};
use crate::scale::Scale;

/// A whole-run window: generous enough to stay active for any scale.
const WHOLE_RUN_NS: f64 = 1e12;

/// The named fault regimes the sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Per-bank write-latency inflation that worsens over time.
    LatencyDrift,
    /// Transient unavailability windows on a quarter of the banks.
    BankOutage,
    /// Stuck-at worn lines forcing write retries (wear-out hot spots).
    StuckLines,
    /// Sampling-measurement noise corrupting the controller's readings.
    MeasurementNoise,
    /// All of the above at once.
    Compound,
}

impl ChaosScenario {
    /// Every scenario, in sweep order.
    pub const ALL: [ChaosScenario; 5] = [
        ChaosScenario::LatencyDrift,
        ChaosScenario::BankOutage,
        ChaosScenario::StuckLines,
        ChaosScenario::MeasurementNoise,
        ChaosScenario::Compound,
    ];

    /// Stable scenario label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::LatencyDrift => "latency-drift",
            ChaosScenario::BankOutage => "bank-outage",
            ChaosScenario::StuckLines => "stuck-lines",
            ChaosScenario::MeasurementNoise => "measurement-noise",
            ChaosScenario::Compound => "compound",
        }
    }

    /// Build this scenario's deterministic fault plan.
    #[must_use]
    pub fn plan(self, seed: u64) -> FaultPlan {
        let mut events = Vec::new();
        match self {
            ChaosScenario::LatencyDrift => events.extend(latency_drift_events()),
            ChaosScenario::BankOutage => events.extend(bank_outage_events()),
            ChaosScenario::StuckLines => events.extend(stuck_line_events(seed)),
            ChaosScenario::MeasurementNoise => events.push(measurement_noise_event()),
            ChaosScenario::Compound => {
                events.extend(latency_drift_events());
                events.extend(bank_outage_events());
                events.extend(stuck_line_events(seed));
                events.push(measurement_noise_event());
            }
        }
        FaultPlan { seed, events }
    }
}

/// Global 1.8x write-latency inflation, drifting worse with time, plus a
/// harsher window on one bank (temperature hot spot).
fn latency_drift_events() -> Vec<FaultEvent> {
    vec![
        FaultEvent::WriteLatencyDrift {
            bank: None,
            start_ns: 0.0,
            end_ns: WHOLE_RUN_NS,
            factor: 1.8,
            drift_per_ms: 0.5,
        },
        FaultEvent::WriteLatencyDrift {
            bank: Some(3),
            start_ns: 0.0,
            end_ns: WHOLE_RUN_NS,
            factor: 1.5,
            drift_per_ms: 0.0,
        },
    ]
}

/// Four of the sixteen banks go dark for a long mid-run window.
fn bank_outage_events() -> Vec<FaultEvent> {
    (0..4)
        .map(|bank| FaultEvent::BankOutage {
            bank,
            start_ns: 20_000.0 + 10_000.0 * bank as f64,
            end_ns: 200_000.0 + 20_000.0 * bank as f64,
        })
        .collect()
}

/// A spread of worn lines that each force a few write retries. Line ids
/// are seeded so different seeds stress different cache-line neighbors.
fn stuck_line_events(seed: u64) -> Vec<FaultEvent> {
    (0..64)
        .map(|i| FaultEvent::StuckLine {
            line: (seed % 1_024) * 64 + i * 17,
            from_ns: 0.0,
            retries: 4,
        })
        .collect()
}

/// ±20% multiplicative noise on finalized cycle/wear readings.
fn measurement_noise_event() -> FaultEvent {
    FaultEvent::MeasurementNoise { amplitude: 0.2 }
}

/// Run the MCT controller on `workload` with `plan` armed after warmup.
#[must_use]
pub fn run_mct_under_faults(
    workload: Workload,
    plan: &FaultPlan,
    total_insts: u64,
    target_years: f64,
    seed: u64,
) -> Outcome {
    let mut cfg = ControllerConfig::paper_scaled();
    cfg.total_insts = total_insts;
    cfg.warmup_insts = workload.warmup_insts();
    cfg.seed = seed;
    cfg.fault_plan = Some(plan.clone());
    let mut controller = Controller::new(cfg, Objective::paper_default(target_years));
    controller.run(&mut workload.source(seed))
}

/// Render the chaos sweep.
pub fn run(scale: Scale, out: &mut dyn Write) -> io::Result<()> {
    writeln!(
        out,
        "== Chaos sweep: MCT vs static baseline under injected faults (scale: {scale}) =="
    )?;
    let target = 8.0;
    let insts = scale.controller_insts() / 2;
    for workload in [Workload::Stream, Workload::Lbm] {
        let mut table = Table::new([
            "scenario",
            "static ipc",
            "static life",
            "mct ipc",
            "mct life",
            "fallbacks",
        ]);
        for scenario in ChaosScenario::ALL {
            let plan = scenario.plan(EXPERIMENT_SEED);
            // Static baseline under the same plan, same warmed stream.
            let mut rig = WarmedRig::with_budget(workload, EXPERIMENT_SEED, insts);
            rig.arm_faults(&plan);
            let stat = rig.measure(&NvmConfig::static_baseline());
            // Full controller with the degradation ladder armed.
            let outcome = run_mct_under_faults(workload, &plan, insts, target, EXPERIMENT_SEED);
            let fallbacks = outcome
                .segments
                .iter()
                .filter(|s| s.health_fallback)
                .count();
            table.row([
                scenario.name().to_string(),
                format!("{:.3}", stat.ipc),
                format!("{:.1}", stat.lifetime_years.min(99.0)),
                format!("{:.3}", outcome.final_metrics.ipc),
                format!("{:.1}", outcome.final_metrics.lifetime_years.min(99.0)),
                format!("{fallbacks}"),
            ]);
        }
        writeln!(out, "\n-- {} --", workload.name())?;
        write!(out, "{}", table.render())?;
    }
    writeln!(
        out,
        "\nEvery scenario is a seeded FaultPlan: rerunning with the same seed\n\
         reproduces the same fault schedule bit-for-bit (`mct chaos`)."
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_a_valid_plan() {
        for scenario in ChaosScenario::ALL {
            let plan = scenario.plan(EXPERIMENT_SEED);
            plan.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
            assert!(!plan.is_empty(), "{} plan is empty", scenario.name());
        }
    }

    #[test]
    fn scenario_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ChaosScenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ChaosScenario::ALL.len());
    }

    #[test]
    fn armed_rig_still_measures_finite_metrics() {
        let plan = ChaosScenario::Compound.plan(7);
        let mut rig = WarmedRig::with_budget(Workload::Stream, 7, 40_000);
        rig.arm_faults(&plan);
        let m = rig.measure(&NvmConfig::static_baseline());
        assert!(m.ipc.is_finite() && m.ipc > 0.0);
        assert!(m.energy_j.is_finite() && m.energy_j >= 0.0);
        assert!(!m.lifetime_years.is_nan());
    }
}
