//! MCT for multi-program mixes (paper Section 6.2.5 / Figure 10).
//!
//! The paper applies MCT to 4-program mixes on a 4-core system; exploring
//! the whole design space there is intractable (they compare only against
//! the static policy). This module mirrors that methodology: MCT samples
//! a small configuration set on the live mix, fits gradient boosting,
//! predicts the space, and selects under the 8-year objective — against
//! `default` and `static` references.

use mct_core::{
    optimize,
    sampling::{random_samples, with_anchors},
    ConfigSpace, MetricsPredictor, ModelKind, NvmConfig, Objective,
};
use mct_sim::stats::Metrics;
use mct_sim::system::{MultiSystem, SystemConfig};
use mct_workloads::{Mix, WorkloadSource};

use crate::runner::par_map;
use crate::scale::Scale;

/// Which policy a mix run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixPolicy {
    /// The paper's `default` (fast writes only).
    Default,
    /// The best static policy.
    Static,
    /// MCT with gradient boosting.
    Mct,
}

/// Result of one mix run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MixOutcome {
    /// Geometric-mean per-core IPC (the paper's Figure 10 metric).
    pub geomean_ipc: f64,
    /// Memory lifetime, years.
    pub lifetime_years: f64,
    /// Total system energy, joules.
    pub energy_j: f64,
    /// Per-core IPC fairness (min/max; the paper's future-work metric).
    pub fairness: f64,
    /// The configuration that ran the measurement window.
    pub config: NvmConfig,
}

#[derive(Debug, Clone)]
struct WarmMix {
    sys: MultiSystem,
    sources: Vec<WorkloadSource>,
}

impl WarmMix {
    fn new(mix: Mix, seed: u64, warm_insts: u64) -> WarmMix {
        let mut sys = MultiSystem::new(
            SystemConfig::multicore_4(),
            NvmConfig::default_config().to_policy(),
            4,
        );
        let mut sources = mix.sources(seed);
        sys.warmup(&mut sources, warm_insts);
        WarmMix { sys, sources }
    }

    fn measure(&self, cfg: &NvmConfig, insts_per_core: u64) -> (Metrics, f64, f64) {
        let mut sys = self.sys.clone();
        let mut sources = self.sources.clone();
        sys.set_policy(cfg.to_policy());
        sys.reset_stats();
        let stats = sys.run(&mut sources, insts_per_core);
        (stats.metrics(), stats.geomean_ipc(), stats.fairness())
    }
}

/// Run all three policies on one mix, sharing a single warmed rig
/// (warming the 8 MB shared LLC dominates the cost).
#[must_use]
pub fn run_mix_all(mix: Mix, scale: Scale, seed: u64, target_years: f64) -> [MixOutcome; 3] {
    let rig = warm_rig(mix, scale, seed);
    [
        run_on_rig(&rig, MixPolicy::Default, scale, seed, target_years),
        run_on_rig(&rig, MixPolicy::Static, scale, seed, target_years),
        run_on_rig(&rig, MixPolicy::Mct, scale, seed, target_years),
    ]
}

fn warm_rig(mix: Mix, scale: Scale, seed: u64) -> WarmMix {
    // The 8 MB shared LLC (131 k lines) must reach steady state before
    // dirty evictions flow: ~2 M instructions per core regardless of
    // scale (this is a correctness floor, not a fidelity knob).
    let _ = scale;
    WarmMix::new(mix, seed, 2_000_000)
}

/// Run one mix under the given policy; `target_years` parameterizes the
/// objective (and the static/fixup quota).
#[must_use]
pub fn run_mix_mct(
    mix: Mix,
    policy: MixPolicy,
    scale: Scale,
    seed: u64,
    target_years: f64,
) -> MixOutcome {
    let rig = warm_rig(mix, scale, seed);
    run_on_rig(&rig, policy, scale, seed, target_years)
}

fn run_on_rig(
    rig: &WarmMix,
    policy: MixPolicy,
    scale: Scale,
    seed: u64,
    target_years: f64,
) -> MixOutcome {
    let detailed = (800_000.0 * scale.detailed_factor()) as u64;
    let chosen = match policy {
        MixPolicy::Default => NvmConfig::default_config(),
        MixPolicy::Static => NvmConfig::static_baseline(),
        MixPolicy::Mct => {
            // Sampling on the live mix (small windows, small sample set).
            let space = ConfigSpace::without_wear_quota();
            let samples = with_anchors(
                random_samples(&space, 32, seed),
                &[
                    NvmConfig::default_config(),
                    NvmConfig::static_baseline().without_wear_quota(),
                ],
            );
            let unit = (detailed / 16).max(10_000);
            let (baseline, _, _) =
                rig.measure(&NvmConfig::static_baseline().without_wear_quota(), unit);
            let threads =
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            let measured: Vec<(NvmConfig, Metrics)> = samples
                .iter()
                .copied()
                .zip(par_map(&samples, threads, |c| rig.measure(c, unit).0))
                .collect();
            let mut predictor = MetricsPredictor::new(ModelKind::GradientBoosting);
            predictor.fit(&measured, Some(baseline));
            let predictions = predictor.predict_all(&space);
            let objective = Objective::paper_default(target_years);
            optimize(
                &space,
                &predictions,
                &objective,
                NvmConfig::static_baseline(),
                true,
            )
            .config
        }
    };
    let (metrics, geomean, fairness) = rig.measure(&chosen, detailed);
    MixOutcome {
        geomean_ipc: geomean,
        lifetime_years: metrics.lifetime_years,
        energy_j: metrics.energy_j,
        fairness,
        config: chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_meets_target_where_default_does_not() {
        let default = run_mix_mct(Mix::Mix1, MixPolicy::Default, Scale::Quick, 9, 8.0);
        let staticp = run_mix_mct(Mix::Mix1, MixPolicy::Static, Scale::Quick, 9, 8.0);
        assert!(default.geomean_ipc > 0.0 && staticp.geomean_ipc > 0.0);
        assert!(
            staticp.lifetime_years > default.lifetime_years,
            "static {} vs default {}",
            staticp.lifetime_years,
            default.lifetime_years
        );
    }

    #[test]
    fn mct_selects_and_measures() {
        let mct = run_mix_mct(Mix::Mix3, MixPolicy::Mct, Scale::Quick, 9, 8.0);
        assert!(mct.geomean_ipc > 0.0);
        mct.config.validate().unwrap();
        assert!(mct.config.wear_quota, "fixup expected");
    }
}
