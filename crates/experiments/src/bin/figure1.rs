//! Figure 1 + Table 5: default vs best-static vs ideal per application
//! (8-year objective), and the per-application ideal configurations.

use mct_core::{ConfigSpace, NvmConfig, Objective};
use mct_experiments::cache::{load_or_compute_sweep, strided_configs};
use mct_experiments::report::{config_table_header, config_table_row, Table};
use mct_experiments::runner::EXPERIMENT_SEED;
use mct_experiments::{ideal_for, Scale};
use mct_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    println!("== Figure 1 / Table 5: default vs baseline vs ideal (scale: {scale}) ==\n");
    let space = ConfigSpace::full(8.0);
    let configs = strided_configs(space.configs(), scale);
    let objective = Objective::paper_default(8.0);

    let mut fig = Table::new([
        "workload",
        "ipc(def)",
        "ipc(base)",
        "ipc(ideal)",
        "life(def)",
        "life(base)",
        "life(ideal)",
        "en(def)",
        "en(base)",
        "en(ideal)",
    ]);
    let mut table5 = Table::new(config_table_header());
    table5.row(config_table_row("default", &NvmConfig::default_config()));
    table5.row(config_table_row("baseline", &NvmConfig::static_baseline()));

    let mut geo: Vec<(f64, f64)> = Vec::new(); // (ideal/base ipc, ideal/base energy)
    for w in Workload::all() {
        let ds = load_or_compute_sweep(w, &configs, scale, EXPERIMENT_SEED);
        let def = ds
            .metrics_of(&NvmConfig::default_config())
            .expect("default measured");
        let base = ds
            .metrics_of(&NvmConfig::static_baseline())
            .expect("baseline measured");
        let ideal = ideal_for(&ds, &objective);
        fig.row([
            w.name().to_string(),
            format!("{:.3}", def.ipc),
            format!("{:.3}", base.ipc),
            format!("{:.3}", ideal.metrics.ipc),
            format!("{:.1}", def.lifetime_years.min(99.0)),
            format!("{:.1}", base.lifetime_years.min(99.0)),
            format!("{:.1}", ideal.metrics.lifetime_years.min(99.0)),
            format!("{:.2}", def.energy_j * 1e3),
            format!("{:.2}", base.energy_j * 1e3),
            format!("{:.2}", ideal.metrics.energy_j * 1e3),
        ]);
        table5.row(config_table_row(
            &format!("{}_ideal", w.name()),
            &ideal.config,
        ));
        geo.push((
            ideal.metrics.ipc / base.ipc,
            ideal.metrics.energy_j / base.energy_j,
        ));
    }
    fig.print();

    let gm = |vals: &[f64]| (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
    let ipc_gain: Vec<f64> = geo.iter().map(|g| g.0).collect();
    let en_ratio: Vec<f64> = geo.iter().map(|g| g.1).collect();
    println!(
        "\nideal vs baseline (geomean): IPC x{:.3}, energy x{:.3}",
        gm(&ipc_gain),
        gm(&en_ratio)
    );
    println!("\n== Table 5: ideal configurations ==\n");
    table5.print();
    println!(
        "\nExpected shape (paper Fig. 1/Table 5): baseline lags ideal on several\n\
         applications; no two applications share the same ideal configuration."
    );
}
