//! Default-configuration landscape: the premise of Figure 7.
//!
//! Prints IPC, projected lifetime and energy under the paper's *default*
//! configuration for all ten workloads. Most workloads must miss the
//! 8-year target; `zeusmp` must pass.

use mct_core::NvmConfig;
use mct_experiments::{measure_one, report::Table, Scale};
use mct_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    println!("== Calibration: default configuration landscape (scale: {scale}) ==\n");
    let mut table = Table::new(["workload", "ipc", "lifetime_y", "energy_mJ", "meets 8y?"]);
    for w in Workload::all() {
        let m = measure_one(w, &NvmConfig::default_config(), scale, 2017);
        table.row([
            w.name().to_string(),
            format!("{:.3}", m.ipc),
            format!("{:.2}", m.lifetime_years),
            format!("{:.2}", m.energy_j * 1e3),
            if m.lifetime_years >= 8.0 {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table.print();
    println!("\nExpected shape (paper Fig. 7): zeusmp passes 8 years; the rest fall short.");
}
