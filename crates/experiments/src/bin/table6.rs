//! Thin wrapper over [`mct_experiments::figures::table6`]: the stage
//! logic lives in the library so `run_all` can execute every stage
//! in-process, sharing warm rigs and caches across figures.

fn main() {
    let scale = mct_experiments::Scale::from_args();
    let stdout = std::io::stdout();
    mct_experiments::figures::table6::run(scale, &mut stdout.lock()).expect("render table6");
    mct_experiments::pipeline::finish();
}
