//! Table 6: most effective quadratic features per application.
//!
//! Fits a lasso on the quadratic expansion of the 5 compressed features
//! (Section 4.4's manual clustering) against each application's sweep
//! data and ranks coefficients by magnitude.

use mct_core::{predictor::lasso_feature_report, ConfigSpace};
use mct_experiments::cache::{load_or_compute_sweep, strided_configs};
use mct_experiments::report::Table;
use mct_experiments::runner::EXPERIMENT_SEED;
use mct_experiments::Scale;
use mct_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    println!("== Table 6: top-3 lasso-quadratic features (IPC objective, scale: {scale}) ==\n");
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);

    let mut table = Table::new(["application", "top-3 most effective features"]);
    for w in [
        Workload::Lbm,
        Workload::Leslie3d,
        Workload::GemsFdtd,
        Workload::Stream,
    ] {
        let ds = load_or_compute_sweep(w, &configs, scale, EXPERIMENT_SEED);
        let report = lasso_feature_report(&ds.pairs(), 0, true, 0.002);
        let top: Vec<String> = report
            .iter()
            .take(3)
            .map(|(name, coef)| format!("{}{}", if *coef >= 0.0 { "+" } else { "-" }, name))
            .collect();
        table.row([w.name().to_string(), top.join(",  ")]);
    }
    table.print();
    println!(
        "\nExpected shape (paper Table 6): top features involve fast_latency,\n\
         slow_latency and cancellation — including squares and knob pairs —\n\
         and differ across applications."
    );
}
