//! Run every experiment binary in order, forwarding `--scale`.
//!
//! `cargo run --release -p mct-experiments --bin run_all -- --scale quick`

use std::process::Command;

const ORDER: [&str; 14] = [
    "config_space",
    "calibrate",
    "table4",
    "figure1",
    "table6",
    "figure2",
    "figure3",
    "figure4",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "extensions",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    for bin in ORDER {
        println!("\n################ {bin} ################\n");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {path:?}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll experiments completed.");
}
