//! Run every experiment stage in order, in one process.
//!
//! `cargo run --release -p mct-experiments --bin run_all -- --scale quick`
//!
//! Running in-process (rather than spawning the per-figure binaries) is
//! what makes the pipeline fast: all stages share one warm-rig pool,
//! one grain/derived cache, and one work-stealing scheduler. Each
//! stage's report is echoed to stdout and mirrored to
//! `<data dir>/out/<stage>.txt`; the stage banners go to stdout only,
//! so the mirrored files are byte-comparable across runs (the CI cache
//! smoke step relies on this).

use std::fs;
use std::io::Write as _;

use mct_experiments::figures::STAGES;
use mct_experiments::Scale;

fn main() {
    let scale = Scale::from_args();
    let out_dir = mct_experiments::cache::data_dir().join("out");
    fs::create_dir_all(&out_dir).expect("create output dir");
    for (name, stage) in STAGES {
        println!("\n################ {name} ################\n");
        let mut buf: Vec<u8> = Vec::new();
        stage(scale, &mut buf).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        let path = out_dir.join(format!("{name}.txt"));
        fs::write(&path, &buf).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        std::io::stdout()
            .write_all(&buf)
            .expect("echo stage output");
    }
    println!("\nAll experiments completed.");
    mct_experiments::pipeline::finish();
}
