//! Thin wrapper over [`mct_experiments::chaos`]: the chaos scenario
//! sweep (MCT vs static baseline under injected fault plans).

fn main() {
    let scale = mct_experiments::Scale::from_args();
    let stdout = std::io::stdout();
    mct_experiments::chaos::run(scale, &mut stdout.lock()).expect("render chaos sweep");
    mct_experiments::pipeline::finish();
}
