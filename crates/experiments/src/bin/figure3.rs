//! Figure 3: including wear quota in the learned space degrades
//! prediction accuracy.
//!
//! Trains gradient boosting on a feature-stratified sample (one
//! configuration per primary-feature class, the paper's 77-sample recipe)
//! of (a) the wear-quota-free sweep and (b) the full sweep including
//! quota configurations, then scores accuracy over the respective space.
//! The paper reports 2–6% degradation when quota is included.

use mct_core::{ConfigSpace, MetricsPredictor, ModelKind};
use mct_experiments::cache::{load_or_compute_sweep, strided_configs, SweepDataset};
use mct_experiments::report::Table;
use mct_experiments::runner::EXPERIMENT_SEED;
use mct_experiments::Scale;
use mct_ml::coefficient_of_determination;
use mct_workloads::Workload;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Train on one member per primary-feature class; score R^2 over the
/// whole dataset.
fn accuracy(ds: &SweepDataset, dim: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut classes: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, c) in ds.configs.iter().enumerate() {
        let key = format!(
            "{:.1}/{:.1}/{}{}",
            c.fast_latency,
            c.slow_latency,
            u8::from(c.fast_cancellation),
            u8::from(c.slow_cancellation)
        );
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => classes.push((key, vec![i])),
        }
    }
    let pairs = ds.pairs();
    let train: Vec<_> = classes
        .iter()
        .map(|(_, members)| pairs[*members.choose(&mut rng).expect("nonempty")])
        .collect();
    let mut predictor = MetricsPredictor::new(ModelKind::GradientBoosting);
    predictor.fit(&train, None);
    let clamp = mct_core::predictor::LIFETIME_CLAMP_YEARS;
    let preds: Vec<f64> = ds
        .configs
        .iter()
        .map(|c| predictor.predict(c).to_array()[dim])
        .collect();
    let truth: Vec<f64> = ds
        .metrics
        .iter()
        .map(|m| m.to_array()[dim].min(clamp))
        .collect();
    coefficient_of_determination(&preds, &truth)
}

fn main() {
    let scale = Scale::from_args();
    println!("== Figure 3: wear quota in vs out of the learned space (scale: {scale}) ==\n");
    let full_space = ConfigSpace::full(8.0);
    let free_space = ConfigSpace::without_wear_quota();
    let full_configs = strided_configs(full_space.configs(), scale);
    let free_configs = strided_configs(free_space.configs(), scale);

    for (dim, obj) in ["ipc", "energy"]
        .iter()
        .enumerate()
        .map(|(i, o)| (i * 2, o))
    {
        println!("-- objective: {obj} --\n");
        let mut table = Table::new([
            "workload",
            "R2 excl. quota",
            "R2 incl. quota",
            "degradation",
        ]);
        for w in [Workload::Lbm, Workload::Leslie3d, Workload::Stream] {
            let ds_free = load_or_compute_sweep(w, &free_configs, scale, EXPERIMENT_SEED);
            let ds_full = load_or_compute_sweep(w, &full_configs, scale, EXPERIMENT_SEED);
            let free_r2 = accuracy(&ds_free, dim, 11);
            let full_r2 = accuracy(&ds_full, dim, 11);
            table.row([
                w.name().to_string(),
                format!("{free_r2:.3}"),
                format!("{full_r2:.3}"),
                format!("{:+.1}%", (full_r2 - free_r2) * 100.0),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "Expected shape (paper Fig. 3): accuracy degrades by a few percent when\n\
         wear-quota configurations join the space — which is why MCT excludes\n\
         quota from learning and applies it as a post-hoc fixup (Section 4.4)."
    );
}
