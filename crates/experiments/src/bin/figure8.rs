//! Figure 8: sensitivity to lifetime targets (4–10 years).
//!
//! For four representative workloads, runs MCT (gradient boosting) and
//! the brute-force ideal under lifetime targets 4, 6, 8 and 10 years.
//! Ideal search uses the wear-quota-free sweep (as in Table 4): the
//! cached quota-on half enforces a fixed 8-year quota and would bias
//! other targets.

use mct_core::{ConfigSpace, Controller, ControllerConfig, ModelKind, Objective};
use mct_experiments::cache::{load_or_compute_sweep, strided_configs};
use mct_experiments::report::Table;
use mct_experiments::runner::WarmedRig;
use mct_experiments::runner::EXPERIMENT_SEED;
use mct_experiments::{ideal_for, Scale};
use mct_workloads::Workload;

fn main() {
    let scale = Scale::from_args();
    println!("== Figure 8: sensitivity to lifetime targets (scale: {scale}) ==\n");
    let space = ConfigSpace::without_wear_quota();
    let configs = strided_configs(space.configs(), scale);

    for w in [
        Workload::Lbm,
        Workload::Leslie3d,
        Workload::GemsFdtd,
        Workload::Stream,
    ] {
        let ds = load_or_compute_sweep(w, &configs, scale, EXPERIMENT_SEED);
        let rig = WarmedRig::new(w, scale, EXPERIMENT_SEED);
        let mut table = Table::new([
            "target",
            "mct ipc",
            "mct life",
            "ideal ipc",
            "ideal life",
            "mct/ideal ipc",
        ]);
        for target in [4.0, 6.0, 8.0, 10.0] {
            let ideal = ideal_for(&ds, &Objective::paper_default(target));
            let mut cfg = ControllerConfig::paper_scaled();
            cfg.model = ModelKind::GradientBoosting;
            cfg.total_insts = scale.controller_insts() / 2;
            cfg.warmup_insts = w.warmup_insts();
            let mut controller = Controller::new(cfg, Objective::paper_default(target));
            let outcome = controller.run(&mut w.source(EXPERIMENT_SEED));
            // Deployment measurement on the shared rig (see figure7).
            let m = rig.measure(&outcome.chosen_config);
            table.row([
                format!("{target:.0}y"),
                format!("{:.3}", m.ipc),
                format!("{:.1}", m.lifetime_years.min(99.0)),
                format!("{:.3}", ideal.metrics.ipc),
                format!("{:.1}", ideal.metrics.lifetime_years.min(99.0)),
                format!("{:.1}%", 100.0 * m.ipc / ideal.metrics.ipc),
            ]);
        }
        println!("-- {} --", w.name());
        table.print();
        println!();
    }
    println!(
        "Expected shape (paper Fig. 8): higher lifetime targets reduce the\n\
         achievable IPC for both MCT and the ideal; MCT tracks the trend, and\n\
         the wear-quota fixup keeps lifetimes near the target even when the\n\
         prediction overestimated."
    );
}
