//! # mct-experiments — reproducing every table and figure
//!
//! The experiment harness behind the paper's evaluation (Section 6): a
//! brute-force sweep engine over the configuration space (the "ideal
//! policy" search that cost the authors 300,000 compute-hours, made
//! tractable here by the event-driven substrate plus warm-state cloning
//! and on-disk caching), plus one binary per table/figure.
//!
//! Binaries (`cargo run --release -p mct-experiments --bin <name> [--scale quick|full]`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `calibrate` | default-config landscape (Figure 7's premise) |
//! | `config_space` | Tables 2–3 (space definition & count) |
//! | `table4` | Table 4 (leslie3d ideal vs lifetime target) |
//! | `figure1` | Figure 1 + Table 5 (default/baseline/ideal per app) |
//! | `table6` | Table 6 (top lasso-quadratic features) |
//! | `figure2` | Figure 2 (+Table 7 accuracy columns) |
//! | `figure3` | Figure 3 (wear quota in/out of the learned space) |
//! | `figure4` | Figure 4 (lasso coefficients; sampling strategies) |
//! | `figure6` | Figure 6 (phase detection on ocean) |
//! | `figure7` | Figure 7 + Table 10 (headline MCT results) |
//! | `figure8` | Figure 8 (lifetime-target sensitivity) |
//! | `figure9` | Figure 9 (sampling overhead & extrapolation) |
//! | `figure10` | Figure 10 + Table 11 (multi-program mixes) |
//! | `chaos` | fault-injection scenario sweep (MCT vs static under faults) |
//! | `run_all` | everything above in order |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod figures;
pub mod ideal;
pub mod mix_mct;
pub mod pipeline;
pub mod report;
pub mod runner;
pub mod scale;
pub mod sched;

pub use cache::{
    load_or_compute_sweep, load_or_compute_sweeps, SweepDataset, SweepRequest, CACHE_VERSION,
};
pub use ideal::{ideal_for, IdealSearch};
pub use mix_mct::{run_mix_all, run_mix_mct};
pub use report::{fmt_cell, Table};
pub use runner::{
    measure_one, par_map, shared_rig, sweep, sweep_with_threads, RigCell, WarmedRig,
    EXPERIMENT_SEED,
};
pub use scale::Scale;
pub use sched::{default_workers, run_grains};
