//! Plain-text table/series rendering for experiment binaries.

use std::fmt::Write as _;

/// Format one cell to a fixed width (right-aligned).
#[must_use]
pub fn fmt_cell(value: &str, width: usize) -> String {
    format!("{value:>width$}")
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Render with per-column widths.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c == 0 {
                    let w = widths[0];
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let w = widths[c];
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Render an ASCII sparkline-style series (for Figure 6's workload trace).
#[must_use]
pub fn ascii_series(values: &[f64], width: usize) -> String {
    if values.is_empty() {
        return String::new();
    }
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    // Downsample to `width` buckets by averaging.
    let n = values.len();
    let bucket = (n as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < n && out.chars().count() < width {
        let lo = i as usize;
        let hi = ((i + bucket) as usize).min(n).max(lo + 1);
        let avg = values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
        let level = (((avg - min) / span) * 7.0).round() as usize;
        out.push(GLYPHS[level.min(7)]);
        i += bucket;
    }
    out
}

/// The 10-column header used by the paper's Tables 4, 5 and 10.
#[must_use]
pub fn config_table_header() -> Vec<&'static str> {
    vec![
        "",
        "bank_aware",
        "ba_thresh",
        "eager_wb",
        "eager_thresh",
        "wear_quota",
        "wq_target",
        "fast_lat",
        "slow_lat",
        "fast_canc",
        "slow_canc",
    ]
}

/// Render a configuration as a Tables-4/5/10-style row (first cell is the
/// row label).
#[must_use]
pub fn config_table_row(label: &str, cfg: &mct_core::NvmConfig) -> Vec<String> {
    let tf = |b: bool| {
        if b {
            "True".to_string()
        } else {
            "False".to_string()
        }
    };
    let na_if = |enabled: bool, v: String| if enabled { v } else { "N/A".to_string() };
    vec![
        label.to_string(),
        tf(cfg.bank_aware),
        na_if(cfg.bank_aware, cfg.bank_aware_threshold.to_string()),
        tf(cfg.eager_writebacks),
        na_if(cfg.eager_writebacks, cfg.eager_threshold.to_string()),
        tf(cfg.wear_quota),
        na_if(cfg.wear_quota, format!("{:.1}", cfg.wear_quota_target)),
        format!("{:.1}", cfg.fast_latency),
        format!("{:.1}", cfg.slow_latency),
        tf(cfg.fast_cancellation),
        tf(cfg.slow_cancellation),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_row_matches_header_arity() {
        let header = config_table_header();
        let row = config_table_row("x", &mct_core::NvmConfig::static_baseline());
        assert_eq!(header.len(), row.len());
        assert_eq!(row[1], "True");
        assert_eq!(row[7], "1.0");
    }

    #[test]
    fn config_row_uses_na_for_disabled() {
        let row = config_table_row("d", &mct_core::NvmConfig::default_config());
        assert_eq!(row[2], "N/A");
        assert_eq!(row[4], "N/A");
        assert_eq!(row[6], "N/A");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "x"]);
        t.row(["a", "1.00"]);
        t.row(["longer", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn sparkline_monotone() {
        let s = ascii_series(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        let levels: Vec<char> = s.chars().collect();
        assert!(levels[0] < levels[3]);
    }

    #[test]
    fn sparkline_downsamples() {
        let values: Vec<f64> = (0..1000).map(f64::from).collect();
        assert_eq!(ascii_series(&values, 50).chars().count(), 50);
    }

    #[test]
    fn fmt_cell_right_aligns() {
        assert_eq!(fmt_cell("x", 4), "   x");
    }
}
