//! On-disk sweep cache.
//!
//! Brute-force sweeps are the expensive part of the reproduction (the
//! paper burned 300,000 compute-hours on them); results are cached as
//! JSON under `data/` so figures can be re-rendered instantly.

use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mct_core::NvmConfig;
use mct_sim::stats::Metrics;
use mct_workloads::Workload;

use crate::runner::sweep;
use crate::scale::Scale;

/// Bump when the simulator/workload calibration changes incompatibly:
/// stale caches are ignored.
pub const CACHE_VERSION: u32 = 3;

/// A cached brute-force sweep for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepDataset {
    /// Cache format/calibration version.
    pub version: u32,
    /// Workload name.
    pub workload: String,
    /// Scale tag the sweep ran at.
    pub scale: String,
    /// Space stride used.
    pub stride: usize,
    /// The measured configurations.
    pub configs: Vec<NvmConfig>,
    /// Parallel metrics.
    pub metrics: Vec<Metrics>,
}

impl SweepDataset {
    /// Pairs of (config, metrics).
    #[must_use]
    pub fn pairs(&self) -> Vec<(NvmConfig, Metrics)> {
        self.configs
            .iter()
            .copied()
            .zip(self.metrics.iter().copied())
            .collect()
    }

    /// Metrics of the first configuration equal to `cfg`, if measured.
    #[must_use]
    pub fn metrics_of(&self, cfg: &NvmConfig) -> Option<Metrics> {
        self.configs
            .iter()
            .position(|c| c == cfg)
            .map(|i| self.metrics[i])
    }
}

/// Default cache directory (workspace `data/`), overridable with
/// `MCT_DATA_DIR`.
#[must_use]
pub fn data_dir() -> PathBuf {
    std::env::var_os("MCT_DATA_DIR").map_or_else(|| PathBuf::from("data"), PathBuf::from)
}

/// Cache files are keyed by workload, scale, stride *and* the number of
/// configurations: the full and quota-free spaces produce different lists
/// and must not clobber each other's caches.
fn cache_path(
    dir: &Path,
    workload: Workload,
    scale: Scale,
    stride: usize,
    n_configs: usize,
) -> PathBuf {
    dir.join(format!(
        "sweep_{}_{}_s{}_n{}.json",
        workload.name(),
        scale.tag(),
        stride,
        n_configs
    ))
}

/// Load a cached sweep of `configs` for `workload`, or compute and cache
/// it. `configs` should already be strided per the scale.
///
/// # Panics
/// Panics on unwritable cache directories or corrupt JSON (delete the
/// file to recompute).
#[must_use]
pub fn load_or_compute_sweep(
    workload: Workload,
    configs: &[NvmConfig],
    scale: Scale,
    seed: u64,
) -> SweepDataset {
    let dir = data_dir();
    let path = cache_path(&dir, workload, scale, scale.space_stride(), configs.len());
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(ds) = serde_json::from_str::<SweepDataset>(&text) {
            if ds.version == CACHE_VERSION && ds.configs == configs {
                return ds;
            }
            eprintln!("note: stale cache {path:?}; recomputing");
        }
    }
    let t0 = std::time::Instant::now();
    eprintln!(
        "sweeping {} over {} configs at scale {scale} ...",
        workload.name(),
        configs.len()
    );
    let metrics = sweep(workload, configs, scale, seed);
    eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
    let ds = SweepDataset {
        version: CACHE_VERSION,
        workload: workload.name().to_string(),
        scale: scale.tag().to_string(),
        stride: scale.space_stride(),
        configs: configs.to_vec(),
        metrics,
    };
    fs::create_dir_all(&dir).expect("create data dir");
    fs::write(&path, serde_json::to_string(&ds).expect("serialize sweep"))
        .expect("write sweep cache");
    ds
}

/// Apply the scale's stride to a configuration list, always retaining the
/// anchor configurations (default + static baseline variants) so every
/// figure can reference them.
#[must_use]
pub fn strided_configs(all: &[NvmConfig], scale: Scale) -> Vec<NvmConfig> {
    let stride = scale.space_stride();
    let mut out: Vec<NvmConfig> = all.iter().step_by(stride).copied().collect();
    for anchor in [
        NvmConfig::default_config(),
        NvmConfig::static_baseline(),
        NvmConfig::static_baseline().without_wear_quota(),
    ] {
        if all.contains(&anchor) && !out.contains(&anchor) {
            out.push(anchor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_core::ConfigSpace;

    #[test]
    fn strided_configs_keep_anchors() {
        let space = ConfigSpace::full(8.0);
        let strided = strided_configs(space.configs(), Scale::Quick);
        assert!(strided.len() < space.len());
        assert!(strided.contains(&NvmConfig::default_config()));
        assert!(strided.contains(&NvmConfig::static_baseline()));
    }

    #[test]
    fn full_scale_is_identity_plus_anchors() {
        let space = ConfigSpace::full(8.0);
        let strided = strided_configs(space.configs(), Scale::Full);
        assert_eq!(strided.len(), space.len());
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join(format!("mct_cache_test_{}", std::process::id()));
        std::env::set_var("MCT_DATA_DIR", &dir);
        let configs = vec![NvmConfig::default_config()];
        let a = load_or_compute_sweep(Workload::Gups, &configs, Scale::Quick, 5);
        let b = load_or_compute_sweep(Workload::Gups, &configs, Scale::Quick, 5);
        assert_eq!(a.configs, b.configs);
        // JSON float round-trips can lose the last ULP; compare loosely.
        for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
            assert!((ma.ipc - mb.ipc).abs() < 1e-9);
            assert!((ma.lifetime_years - mb.lifetime_years).abs() < 1e-9);
            assert!((ma.energy_j - mb.energy_j).abs() < 1e-12);
        }
        std::env::remove_var("MCT_DATA_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataset_lookup() {
        let ds = SweepDataset {
            version: CACHE_VERSION,
            workload: "x".into(),
            scale: "quick".into(),
            stride: 1,
            configs: vec![NvmConfig::default_config()],
            metrics: vec![Metrics {
                ipc: 1.0,
                lifetime_years: 2.0,
                energy_j: 3.0,
            }],
        };
        assert!(ds.metrics_of(&NvmConfig::default_config()).is_some());
        assert!(ds.metrics_of(&NvmConfig::static_baseline()).is_none());
        assert_eq!(ds.pairs().len(), 1);
    }
}
