//! Content-addressed, per-grain measurement cache.
//!
//! Brute-force sweeps are the expensive part of the reproduction (the
//! paper burned 300,000 compute-hours on them). Earlier revisions cached
//! whole sweeps as single JSON blobs — all-or-nothing: a killed run lost
//! everything, and any change to the config list invalidated the file.
//!
//! This module caches *measurement grains* instead. A grain is one
//! (workload × config × detailed budget) measurement, addressed by an
//! FNV-1a hash over its full calibration identity ([`grain_key`]), and
//! persisted as one JSONL line appended (and flushed) the moment it is
//! measured. A killed or partial run therefore loses nothing, figures
//! can share grains regardless of which config list requested them, and
//! [`load_or_compute_sweeps`] flattens *all* outstanding grains across
//! every requested sweep into one batch for the work-stealing scheduler
//! ([`crate::sched`]).
//!
//! Loading is tolerant: lines whose `v` field predates [`CACHE_VERSION`]
//! are discarded (logged, counted as `stale_discarded`), and corrupt or
//! truncated lines — e.g. the tail of a write cut off by a kill — are
//! discarded and re-measured rather than crashing (`corrupt_discarded`).
//!
//! Derived results (controller runs, mix runs) use the same machinery
//! via [`DerivedStore`]: arbitrary serde values keyed by a label + the
//! parameters that determine them.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Content, Deserialize, Serialize};

use mct_core::NvmConfig;
use mct_sim::stats::Metrics;
use mct_telemetry::pipeline_stats;
use mct_workloads::Workload;

use crate::runner::{shared_rig, RigCell};
use crate::scale::Scale;
use crate::sched::{default_workers, run_grains};

/// Bump when the simulator/workload calibration changes incompatibly:
/// stale grains are discarded on load.
pub const CACHE_VERSION: u32 = 4;

/// FNV-1a 64-bit hash (vendored-free content addressing; stable across
/// platforms and runs, unlike `DefaultHasher`).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content address of one measurement grain: workload, seed, detailed
/// budget, and every knob of the configuration (as exact f64 bits).
///
/// The cache version is *not* hashed in — it is stored per line so that
/// stale entries can be recognized, counted, and logged rather than
/// silently orphaned.
#[must_use]
pub fn grain_key(workload: Workload, seed: u64, detailed_insts: u64, cfg: &NvmConfig) -> u64 {
    vector_grain_key(workload, seed, detailed_insts, &cfg.to_vector())
}

/// [`grain_key`] over an arbitrary feature vector (extended-space
/// configurations have more knobs than [`NvmConfig`]; vectors of
/// different lengths hash differently).
#[must_use]
pub fn vector_grain_key(workload: Workload, seed: u64, detailed_insts: u64, vector: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(32 + 8 * vector.len());
    bytes.extend_from_slice(workload.name().as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&seed.to_le_bytes());
    bytes.extend_from_slice(&detailed_insts.to_le_bytes());
    for v in vector {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Content address of a derived (non-grain) result: a label plus the
/// f64 parameters that determine it.
#[must_use]
pub fn derived_key(label: &str, seed: u64, params: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(64 + 8 * params.len());
    bytes.extend_from_slice(label.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&seed.to_le_bytes());
    for v in params {
        bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// One persisted measurement grain (a JSONL line).
#[derive(Debug, Serialize, Deserialize)]
struct GrainLine {
    /// Cache version the grain was measured under.
    v: u32,
    /// [`grain_key`] content address.
    k: u64,
    /// The measured metrics.
    m: Metrics,
}

/// Tolerantly load a JSONL store, discarding (and counting) stale and
/// corrupt lines. Returns the surviving `(key, line)` pairs.
fn load_jsonl<L: Deserialize>(path: &Path, version_of: impl Fn(&L) -> u32) -> Vec<L> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut stale = 0u64;
    let mut corrupt = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<L>(line) {
            Ok(l) if version_of(&l) == CACHE_VERSION => out.push(l),
            Ok(_) => stale += 1,
            Err(_) => corrupt += 1,
        }
    }
    let stats = pipeline_stats();
    if stale > 0 {
        stats.add_stale_discarded(stale);
        eprintln!(
            "note: discarded {stale} stale cache entr{} in {} (cache version != {CACHE_VERSION}); re-measuring",
            if stale == 1 { "y" } else { "ies" },
            path.display()
        );
    }
    if corrupt > 0 {
        stats.add_corrupt_discarded(corrupt);
        eprintln!(
            "note: discarded {corrupt} corrupt/truncated cache line{} in {}; re-measuring",
            if corrupt == 1 { "" } else { "s" },
            path.display()
        );
    }
    out
}

/// An append-only on-disk store of measurement grains.
///
/// Each recorded grain is appended and flushed as its own line, so a
/// killed run keeps everything measured up to the kill. All methods are
/// thread-safe — scheduler workers record grains concurrently.
#[derive(Debug)]
pub struct GrainStore {
    path: PathBuf,
    entries: Mutex<HashMap<u64, Metrics>>,
    writer: Mutex<Option<fs::File>>,
}

impl GrainStore {
    /// Open (or create-on-first-write) the store at `path`, tolerantly
    /// loading whatever valid grains it already holds.
    #[must_use]
    pub fn open(path: PathBuf) -> GrainStore {
        let entries = load_jsonl::<GrainLine>(&path, |l| l.v)
            .into_iter()
            .map(|l| (l.k, l.m))
            .collect();
        GrainStore {
            path,
            entries: Mutex::new(entries),
            writer: Mutex::new(None),
        }
    }

    /// Number of cached grains.
    ///
    /// # Panics
    /// Panics if the store mutex is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("grain store lock").len()
    }

    /// True when no grains are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached metrics for `key`, if present.
    ///
    /// # Panics
    /// Panics if the store mutex is poisoned.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Metrics> {
        self.entries
            .lock()
            .expect("grain store lock")
            .get(&key)
            .copied()
    }

    /// Record a freshly measured grain: appended to disk (one flushed
    /// line — a partial run loses at most the line being written) and
    /// inserted in memory.
    ///
    /// # Panics
    /// Panics on an unwritable store path or a poisoned mutex.
    pub fn record(&self, key: u64, m: Metrics) {
        let line = serde_json::to_string(&GrainLine {
            v: CACHE_VERSION,
            k: key,
            m,
        })
        .expect("serialize grain");
        {
            let mut writer = self.writer.lock().expect("grain writer lock");
            let file = writer.get_or_insert_with(|| {
                if let Some(dir) = self.path.parent() {
                    fs::create_dir_all(dir).expect("create cache dir");
                }
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .expect("open grain store for append")
            });
            file.write_all(format!("{line}\n").as_bytes())
                .expect("append grain");
            file.flush().expect("flush grain");
        }
        self.entries
            .lock()
            .expect("grain store lock")
            .insert(key, m);
    }
}

/// One persisted derived result (a JSONL line).
#[derive(Debug, Serialize, Deserialize)]
struct DerivedLine {
    v: u32,
    k: u64,
    /// The serde-encoded payload (controller outcome, mix outcome, ...).
    val: Content,
}

/// An append-only on-disk store of derived results — controller and mix
/// outcomes keyed by [`derived_key`]. Same durability and tolerance
/// story as [`GrainStore`].
#[derive(Debug)]
pub struct DerivedStore {
    path: PathBuf,
    entries: Mutex<HashMap<u64, Content>>,
    writer: Mutex<Option<fs::File>>,
}

impl DerivedStore {
    /// Open (or create-on-first-write) the store at `path`.
    #[must_use]
    pub fn open(path: PathBuf) -> DerivedStore {
        let entries = load_jsonl::<DerivedLine>(&path, |l| l.v)
            .into_iter()
            .map(|l| (l.k, l.val))
            .collect();
        DerivedStore {
            path,
            entries: Mutex::new(entries),
            writer: Mutex::new(None),
        }
    }

    /// The cached value for `key` decoded as `T`; a value that fails to
    /// decode (schema drift without a version bump) counts as corrupt
    /// and is re-computed.
    ///
    /// # Panics
    /// Panics if the store mutex is poisoned.
    #[must_use]
    pub fn get_as<T: Deserialize>(&self, key: u64) -> Option<T> {
        let val = self
            .entries
            .lock()
            .expect("derived store lock")
            .get(&key)
            .cloned()?;
        match T::deserialize_content(&val) {
            Ok(t) => Some(t),
            Err(_) => {
                pipeline_stats().add_corrupt_discarded(1);
                eprintln!(
                    "note: cached derived result {key:#018x} in {} failed to decode; re-computing",
                    self.path.display()
                );
                None
            }
        }
    }

    /// Record a derived result (appended + flushed).
    ///
    /// # Panics
    /// Panics on an unwritable store path or a poisoned mutex.
    pub fn record<T: Serialize>(&self, key: u64, value: &T) {
        let val = value.serialize_content();
        let line = serde_json::to_string(&DerivedLine {
            v: CACHE_VERSION,
            k: key,
            val: val.clone(),
        })
        .expect("serialize derived line");
        {
            let mut writer = self.writer.lock().expect("derived writer lock");
            let file = writer.get_or_insert_with(|| {
                if let Some(dir) = self.path.parent() {
                    fs::create_dir_all(dir).expect("create cache dir");
                }
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .expect("open derived store for append")
            });
            file.write_all(format!("{line}\n").as_bytes())
                .expect("append derived result");
            file.flush().expect("flush derived result");
        }
        self.entries
            .lock()
            .expect("derived store lock")
            .insert(key, val);
    }

    /// Serve `key` from the cache or compute, record, and return it.
    /// Both paths feed the pipeline hit rate: a hit counts as a cache
    /// hit, a compute as an executed grain, so `hits + executed` equals
    /// requests across grain and derived stores alike.
    pub fn get_or_compute<T, F>(&self, key: u64, compute: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        if let Some(v) = self.get_as::<T>(key) {
            pipeline_stats().add_cache_hits(1);
            return v;
        }
        let v = compute();
        pipeline_stats().add_grains_executed(1);
        self.record(key, &v);
        v
    }
}

/// Default cache directory (workspace `data/`), overridable with
/// `MCT_DATA_DIR`.
#[must_use]
pub fn data_dir() -> PathBuf {
    std::env::var_os("MCT_DATA_DIR").map_or_else(|| PathBuf::from("data"), PathBuf::from)
}

/// Grain stores are sharded per (workload, scale tag, seed) purely to
/// keep files reviewable; identity lives in the per-grain keys.
fn grain_store_path(dir: &Path, workload: Workload, scale: Scale, seed: u64) -> PathBuf {
    dir.join(format!(
        "grains_{}_{}_seed{}.jsonl",
        workload.name(),
        scale.tag(),
        seed
    ))
}

fn derived_store_path(dir: &Path, scale: Scale, seed: u64) -> PathBuf {
    dir.join(format!("derived_{}_seed{}.jsonl", scale.tag(), seed))
}

/// Process-wide store pool, keyed by path: every figure in a run shares
/// one loaded copy of each store (and its append handle).
fn grain_pool() -> &'static Mutex<HashMap<PathBuf, Arc<GrainStore>>> {
    static POOL: OnceLock<Mutex<HashMap<PathBuf, Arc<GrainStore>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

fn derived_pool() -> &'static Mutex<HashMap<PathBuf, Arc<DerivedStore>>> {
    static POOL: OnceLock<Mutex<HashMap<PathBuf, Arc<DerivedStore>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The shared grain store for (workload, scale, seed) under the current
/// data dir.
///
/// # Panics
/// Panics if the pool mutex is poisoned.
#[must_use]
pub fn grain_store(workload: Workload, scale: Scale, seed: u64) -> Arc<GrainStore> {
    let path = grain_store_path(&data_dir(), workload, scale, seed);
    Arc::clone(
        grain_pool()
            .lock()
            .expect("grain pool lock")
            .entry(path.clone())
            .or_insert_with(|| Arc::new(GrainStore::open(path))),
    )
}

/// The shared derived-result store for (scale, seed) under the current
/// data dir.
///
/// # Panics
/// Panics if the pool mutex is poisoned.
#[must_use]
pub fn derived_store(scale: Scale, seed: u64) -> Arc<DerivedStore> {
    let path = derived_store_path(&data_dir(), scale, seed);
    Arc::clone(
        derived_pool()
            .lock()
            .expect("derived pool lock")
            .entry(path.clone())
            .or_insert_with(|| Arc::new(DerivedStore::open(path))),
    )
}

/// A cached brute-force sweep for one workload (assembled per request
/// from the grain store; kept as the figures' working representation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepDataset {
    /// Cache format/calibration version.
    pub version: u32,
    /// Workload name.
    pub workload: String,
    /// Scale tag the sweep ran at.
    pub scale: String,
    /// Space stride used.
    pub stride: usize,
    /// The measured configurations.
    pub configs: Vec<NvmConfig>,
    /// Parallel metrics.
    pub metrics: Vec<Metrics>,
}

impl SweepDataset {
    /// Pairs of (config, metrics).
    #[must_use]
    pub fn pairs(&self) -> Vec<(NvmConfig, Metrics)> {
        self.configs
            .iter()
            .copied()
            .zip(self.metrics.iter().copied())
            .collect()
    }

    /// Metrics of the first configuration equal to `cfg`, if measured.
    #[must_use]
    pub fn metrics_of(&self, cfg: &NvmConfig) -> Option<Metrics> {
        self.configs
            .iter()
            .position(|c| c == cfg)
            .map(|i| self.metrics[i])
    }
}

/// One sweep wanted by a figure: a workload and the configs to measure.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The workload to sweep.
    pub workload: Workload,
    /// The configurations to measure (already strided per the scale).
    pub configs: Vec<NvmConfig>,
}

/// A scheduled cache miss: everything a worker needs to measure and
/// persist one grain.
struct MissGrain {
    cfg: NvmConfig,
    key: u64,
    rig: Arc<RigCell>,
    store: Arc<GrainStore>,
}

/// Serve a batch of sweeps from the grain cache, measuring only the
/// missing grains — flattened across *all* requests into one
/// work-stealing round ([`crate::sched::run_grains`]), so a figure
/// needing ten workloads keeps every core busy instead of sweeping them
/// one at a time. Fresh grains are appended to their stores as they
/// complete; a killed run keeps them.
///
/// Returned datasets are index-parallel with `requests`, and the
/// metrics for a given grain are bit-identical whether served from
/// cache or measured fresh (measurement is deterministic per grain and
/// JSON round-trips f64s exactly).
///
/// # Panics
/// Panics on unwritable cache directories (delete the store file to
/// recover from anything else — loading is tolerant).
#[must_use]
pub fn load_or_compute_sweeps(
    requests: &[SweepRequest],
    scale: Scale,
    seed: u64,
) -> Vec<SweepDataset> {
    let stats = pipeline_stats();
    let mut misses: Vec<MissGrain> = Vec::new();
    let mut scheduled: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut hits = 0u64;
    // Index-parallel with `requests`: (store, per-config keys).
    let mut plans: Vec<(Arc<GrainStore>, Vec<u64>)> = Vec::with_capacity(requests.len());

    for req in requests {
        let store = grain_store(req.workload, scale, seed);
        let budget = req.workload.detailed_insts(scale.detailed_factor());
        let mut keys = Vec::with_capacity(req.configs.len());
        let mut rig: Option<Arc<RigCell>> = None;
        for cfg in &req.configs {
            let key = grain_key(req.workload, seed, budget, cfg);
            keys.push(key);
            if store.get(key).is_some() || scheduled.contains(&key) {
                hits += 1;
                continue;
            }
            scheduled.insert(key);
            misses.push(MissGrain {
                cfg: *cfg,
                key,
                rig: Arc::clone(rig.get_or_insert_with(|| shared_rig(req.workload, seed, budget))),
                store: Arc::clone(&store),
            });
        }
        plans.push((store, keys));
    }
    stats.add_cache_hits(hits);

    if !misses.is_empty() {
        let workers = default_workers();
        // Pre-warm each distinct rig in parallel so no measurement worker
        // stalls behind another workload's warmup. Warmups are rig work,
        // not grains — they are accounted by the rig pool, not the
        // scheduler.
        let mut warm: Vec<Arc<RigCell>> = Vec::new();
        for g in &misses {
            if !warm.iter().any(|c| Arc::ptr_eq(c, &g.rig)) {
                warm.push(Arc::clone(&g.rig));
            }
        }
        // Single deployment-style measurements stay quiet; only real
        // sweep rounds get progress lines.
        let chatty = misses.len() >= 8;
        // mct-tidy: allow(D002) -- progress-line timing only; never feeds results
        let t0 = Instant::now();
        if chatty {
            eprintln!(
                "measuring {} grains across {} workload rigs ({} served from cache) at scale {scale} ...",
                misses.len(),
                warm.len(),
                hits
            );
        }
        std::thread::scope(|scope| {
            for chunk in warm.chunks(warm.len().div_ceil(workers.max(1))) {
                scope.spawn(move || {
                    for cell in chunk {
                        let _ = cell.rig();
                    }
                });
            }
        });
        let _ = run_grains(&misses, workers, |g| {
            let m = g.rig.rig().measure(&g.cfg);
            g.store.record(g.key, m);
            m
        });
        if chatty {
            eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
        }
    }

    requests
        .iter()
        .zip(plans)
        .map(|(req, (store, keys))| SweepDataset {
            version: CACHE_VERSION,
            workload: req.workload.name().to_string(),
            scale: scale.tag().to_string(),
            stride: scale.space_stride(),
            configs: req.configs.clone(),
            metrics: keys
                .iter()
                .map(|k| store.get(*k).expect("grain measured or cached"))
                .collect(),
        })
        .collect()
}

/// Load a cached sweep of `configs` for `workload`, or compute and cache
/// the missing grains. `configs` should already be strided per the
/// scale. Single-request convenience over [`load_or_compute_sweeps`].
///
/// # Panics
/// Panics on unwritable cache directories.
#[must_use]
pub fn load_or_compute_sweep(
    workload: Workload,
    configs: &[NvmConfig],
    scale: Scale,
    seed: u64,
) -> SweepDataset {
    load_or_compute_sweeps(
        &[SweepRequest {
            workload,
            configs: configs.to_vec(),
        }],
        scale,
        seed,
    )
    .pop()
    .expect("one dataset per request")
}

/// Serve one measurement grain from `store` or run `measure`, recording
/// the fresh result. The hit/executed counters feed the pipeline
/// cache-hit rate; use this for one-off deployment measurements that do
/// not warrant a scheduler round.
pub fn cached_measurement(
    store: &GrainStore,
    key: u64,
    measure: impl FnOnce() -> Metrics,
) -> Metrics {
    let stats = pipeline_stats();
    if let Some(m) = store.get(key) {
        stats.add_cache_hits(1);
        return m;
    }
    let m = measure();
    stats.add_grains_executed(1);
    store.record(key, m);
    m
}

/// Measure one (workload × config) grain at the scale's budget through
/// the cache and the shared rig pool.
#[must_use]
pub fn cached_measure(workload: Workload, cfg: &NvmConfig, scale: Scale, seed: u64) -> Metrics {
    let budget = workload.detailed_insts(scale.detailed_factor());
    let store = grain_store(workload, scale, seed);
    let key = grain_key(workload, seed, budget, cfg);
    cached_measurement(&store, key, || {
        shared_rig(workload, seed, budget).rig().measure(cfg)
    })
}

/// Apply the scale's stride to a configuration list, always retaining the
/// anchor configurations (default + static baseline variants) so every
/// figure can reference them.
#[must_use]
pub fn strided_configs(all: &[NvmConfig], scale: Scale) -> Vec<NvmConfig> {
    let stride = scale.space_stride();
    let mut out: Vec<NvmConfig> = all.iter().step_by(stride).copied().collect();
    for anchor in [
        NvmConfig::default_config(),
        NvmConfig::static_baseline(),
        NvmConfig::static_baseline().without_wear_quota(),
    ] {
        if all.contains(&anchor) && !out.contains(&anchor) {
            out.push(anchor);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mct_core::ConfigSpace;

    #[test]
    fn strided_configs_keep_anchors() {
        let space = ConfigSpace::full(8.0);
        let strided = strided_configs(space.configs(), Scale::Quick);
        assert!(strided.len() < space.len());
        assert!(strided.contains(&NvmConfig::default_config()));
        assert!(strided.contains(&NvmConfig::static_baseline()));
    }

    #[test]
    fn full_scale_is_identity_plus_anchors() {
        let space = ConfigSpace::full(8.0);
        let strided = strided_configs(space.configs(), Scale::Full);
        assert_eq!(strided.len(), space.len());
    }

    #[test]
    fn grain_keys_separate_every_identity_axis() {
        let cfg = NvmConfig::default_config();
        let base = grain_key(Workload::Gups, 1, 1000, &cfg);
        assert_eq!(base, grain_key(Workload::Gups, 1, 1000, &cfg), "stable");
        assert_ne!(base, grain_key(Workload::Stream, 1, 1000, &cfg));
        assert_ne!(base, grain_key(Workload::Gups, 2, 1000, &cfg));
        assert_ne!(base, grain_key(Workload::Gups, 1, 1001, &cfg));
        assert_ne!(
            base,
            grain_key(Workload::Gups, 1, 1000, &NvmConfig::static_baseline())
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn grain_store_appends_and_reloads() {
        let dir = std::env::temp_dir().join(format!("mct_grains_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("grains_test.jsonl");
        let m = Metrics {
            ipc: 1.5,
            lifetime_years: 7.25,
            energy_j: 0.125,
        };
        {
            let store = GrainStore::open(path.clone());
            assert!(store.is_empty());
            store.record(1, m);
            store.record(2, m);
            assert_eq!(store.len(), 2);
        }
        let store = GrainStore::open(path);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(1), Some(m));
        assert_eq!(store.get(3), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_corrupt_lines_are_discarded_not_fatal() {
        let dir = std::env::temp_dir().join(format!("mct_stale_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("grains_test.jsonl");
        let good = serde_json::to_string(&GrainLine {
            v: CACHE_VERSION,
            k: 7,
            m: Metrics {
                ipc: 1.0,
                lifetime_years: 2.0,
                energy_j: 3.0,
            },
        })
        .expect("serialize");
        let stale = good.replace(
            &format!("\"v\":{CACHE_VERSION}"),
            &format!("\"v\":{}", CACHE_VERSION - 1),
        );
        assert_ne!(good, stale, "fixture must actually change the version");
        let truncated = &good[..good.len() / 2];
        fs::write(&path, format!("{good}\n{stale}\nnot json\n{truncated}")).expect("write fixture");

        let before = pipeline_stats().snapshot();
        let store = GrainStore::open(path);
        let after = pipeline_stats().snapshot();
        assert_eq!(store.len(), 1, "only the good line survives");
        assert!(store.get(7).is_some());
        assert_eq!(after.stale_discarded - before.stale_discarded, 1);
        assert_eq!(after.corrupt_discarded - before.corrupt_discarded, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn derived_store_round_trips_values() {
        let dir = std::env::temp_dir().join(format!("mct_derived_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("derived_test.jsonl");
        let key = derived_key("mix/all", 9, &[1.0, 2.5]);
        assert_ne!(key, derived_key("mix/all", 9, &[1.0, 2.0]));
        assert_ne!(key, derived_key("mix/other", 9, &[1.0, 2.5]));
        {
            let store = DerivedStore::open(path.clone());
            let v: Vec<f64> = store.get_or_compute(key, || vec![1.0, 2.0, 3.0]);
            assert_eq!(v, vec![1.0, 2.0, 3.0]);
        }
        let store = DerivedStore::open(path);
        let v: Vec<f64> = store.get_or_compute(key, || panic!("must be served from disk"));
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        let _ = fs::remove_dir_all(&dir);
    }
}
