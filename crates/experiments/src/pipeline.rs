//! End-of-run pipeline accounting.
//!
//! Every experiment binary calls [`finish`] before exiting: it prints a
//! one-line `pipeline total:` summary to stderr (stable format, grepped
//! by the CI cache-smoke step) and appends an
//! [`Event::PipelineCompleted`] record to the pipeline trace under the
//! data dir, where `mct report` renders scheduler utilization, cache
//! hit rates, and warm-rig accounting.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use mct_telemetry::{pipeline_stats, Event, Record};

use crate::cache::data_dir;

/// The pipeline trace file (JSONL of [`Record`]s, renderable with
/// `mct report`).
#[must_use]
pub fn trace_path() -> PathBuf {
    data_dir().join("pipeline_trace.jsonl")
}

/// Snapshot the process pipeline counters, print the summary line, and
/// append a trace record. No-op for processes that did no pipeline work
/// (e.g. `config_space`, which only enumerates).
pub fn finish() {
    let snapshot = pipeline_stats().snapshot();
    if snapshot.grains_total() == 0 && snapshot.rig_warmups == 0 {
        return;
    }
    eprintln!("pipeline total: {}", snapshot.summary_line());
    let record = Record {
        seq: 0,
        sim_insts: 0,
        wall_us: 0,
        event: Event::PipelineCompleted { snapshot },
    };
    let path = trace_path();
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let line = serde_json::to_string(&record).expect("serialize pipeline record");
        file.write_all(format!("{line}\n").as_bytes())
    };
    if let Err(e) = write() {
        eprintln!(
            "warning: could not append pipeline trace {}: {e}",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_path_follows_data_dir() {
        assert!(trace_path().ends_with("pipeline_trace.jsonl"));
    }
}
