//! End-of-run pipeline accounting.
//!
//! Every experiment binary calls [`finish`] before exiting: it prints a
//! one-line `pipeline total:` summary to stderr (stable format, grepped
//! by the CI cache-smoke step), appends an
//! [`Event::PipelineCompleted`] record to the pipeline trace under the
//! data dir (where `mct report` renders scheduler utilization, cache
//! hit rates, and warm-rig accounting), and overwrites a Prometheus
//! text exposition of the same counters — including per-worker labeled
//! series — for scrape-style consumption.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use mct_telemetry::{pipeline_stats, render_prometheus, Event, Record, Registry};

use crate::cache::data_dir;

/// The pipeline trace file (JSONL of [`Record`]s, renderable with
/// `mct report`).
#[must_use]
pub fn trace_path() -> PathBuf {
    data_dir().join("pipeline_trace.jsonl")
}

/// The pipeline metrics exposition file (Prometheus text format,
/// overwritten by the most recent [`finish`]).
#[must_use]
pub fn metrics_path() -> PathBuf {
    data_dir().join("pipeline_metrics.prom")
}

/// Snapshot the process pipeline counters, print the summary line, and
/// append a trace record. No-op for processes that did no pipeline work
/// (e.g. `config_space`, which only enumerates).
pub fn finish() {
    let snapshot = pipeline_stats().snapshot();
    if snapshot.grains_total() == 0 && snapshot.rig_warmups == 0 {
        return;
    }
    eprintln!("pipeline total: {}", snapshot.summary_line());
    // Bridge the counters into a labeled registry and expose them; the
    // last binary in a sweep wins, which is the sweep's full picture
    // since the process-global stats accumulate monotonically.
    let mut registry = Registry::default();
    snapshot.to_registry(&mut registry);
    let prom_path = metrics_path();
    let prom_write = || -> std::io::Result<()> {
        if let Some(dir) = prom_path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(&prom_path, render_prometheus(&registry.snapshot()))
    };
    if let Err(e) = prom_write() {
        eprintln!(
            "warning: could not write pipeline metrics {}: {e}",
            prom_path.display()
        );
    }
    let record = Record {
        seq: 0,
        sim_insts: 0,
        wall_us: 0,
        event: Event::PipelineCompleted { snapshot },
    };
    let path = trace_path();
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let line = serde_json::to_string(&record).expect("serialize pipeline record");
        file.write_all(format!("{line}\n").as_bytes())
    };
    if let Err(e) = write() {
        eprintln!(
            "warning: could not append pipeline trace {}: {e}",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_path_follows_data_dir() {
        assert!(trace_path().ends_with("pipeline_trace.jsonl"));
        assert!(metrics_path().ends_with("pipeline_metrics.prom"));
    }
}
