//! Experiment scaling: quick (CI-friendly) vs full fidelity.

use std::fmt;

/// How much simulation to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny budgets and a coarse stride — seconds end-to-end. For CI
    /// smoke runs and cache-behavior tests, not for reading results off.
    Smoke,
    /// Reduced instruction budgets and a strided configuration space —
    /// minutes on a laptop core.
    Quick,
    /// Full budgets and the complete space.
    Full,
}

impl Scale {
    /// Multiplier on each workload's detailed instruction budget.
    #[must_use]
    pub fn detailed_factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.08,
            Scale::Quick => 0.3,
            Scale::Full => 1.0,
        }
    }

    /// Stride over the configuration space for brute-force sweeps
    /// (1 = every configuration).
    #[must_use]
    pub fn space_stride(self) -> usize {
        match self {
            Scale::Smoke => 32,
            Scale::Quick => 4,
            Scale::Full => 1,
        }
    }

    /// Total instruction budget for controller (MCT runtime) experiments.
    #[must_use]
    pub fn controller_insts(self) -> u64 {
        match self {
            Scale::Smoke => 2_000_000,
            Scale::Quick => 8_000_000,
            Scale::Full => 20_000_000,
        }
    }

    /// File-name tag for cached datasets.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parse from CLI args (`--scale smoke|quick|full`; default quick).
    ///
    /// # Panics
    /// Panics (with a usage message) on an unrecognized value.
    #[must_use]
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("smoke") => Scale::Smoke,
                Some("quick") => Scale::Quick,
                Some("full") => Scale::Full,
                other => panic!("--scale expects smoke|quick|full, got {other:?}"),
            },
            None => Scale::Quick,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_strictly_ordered_by_cost() {
        assert!(Scale::Smoke.detailed_factor() < Scale::Quick.detailed_factor());
        assert!(Scale::Quick.detailed_factor() < Scale::Full.detailed_factor());
        assert!(Scale::Smoke.space_stride() > Scale::Quick.space_stride());
        assert!(Scale::Quick.space_stride() > Scale::Full.space_stride());
        assert!(Scale::Smoke.controller_insts() < Scale::Quick.controller_insts());
        assert!(Scale::Quick.controller_insts() < Scale::Full.controller_insts());
    }

    #[test]
    fn tags() {
        assert_eq!(Scale::Smoke.tag(), "smoke");
        assert_eq!(Scale::Quick.tag(), "quick");
        assert_eq!(Scale::Full.to_string(), "full");
    }
}
