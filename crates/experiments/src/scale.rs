//! Experiment scaling: quick (CI-friendly) vs full fidelity.

use std::fmt;

/// How much simulation to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Reduced instruction budgets and a strided configuration space —
    /// minutes on a laptop core.
    Quick,
    /// Full budgets and the complete space.
    Full,
}

impl Scale {
    /// Multiplier on each workload's detailed instruction budget.
    #[must_use]
    pub fn detailed_factor(self) -> f64 {
        match self {
            Scale::Quick => 0.3,
            Scale::Full => 1.0,
        }
    }

    /// Stride over the configuration space for brute-force sweeps
    /// (1 = every configuration).
    #[must_use]
    pub fn space_stride(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 1,
        }
    }

    /// Total instruction budget for controller (MCT runtime) experiments.
    #[must_use]
    pub fn controller_insts(self) -> u64 {
        match self {
            Scale::Quick => 8_000_000,
            Scale::Full => 20_000_000,
        }
    }

    /// File-name tag for cached datasets.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parse from CLI args (`--scale quick|full`; default quick).
    ///
    /// # Panics
    /// Panics (with a usage message) on an unrecognized value.
    #[must_use]
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            Some(i) => match args.get(i + 1).map(String::as_str) {
                Some("quick") => Scale::Quick,
                Some("full") => Scale::Full,
                other => panic!("--scale expects quick|full, got {other:?}"),
            },
            None => Scale::Quick,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_cheaper_than_full() {
        assert!(Scale::Quick.detailed_factor() < Scale::Full.detailed_factor());
        assert!(Scale::Quick.space_stride() > Scale::Full.space_stride());
        assert!(Scale::Quick.controller_insts() < Scale::Full.controller_insts());
    }

    #[test]
    fn tags() {
        assert_eq!(Scale::Quick.tag(), "quick");
        assert_eq!(Scale::Full.to_string(), "full");
    }
}
