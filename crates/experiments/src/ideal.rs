//! The "ideal policy": brute-force objective optimization over a sweep.

use mct_core::{NvmConfig, Objective};
use mct_sim::stats::Metrics;

use crate::cache::SweepDataset;

/// Result of an ideal-policy search.
#[derive(Debug, Clone, PartialEq)]
pub struct IdealSearch {
    /// The winning configuration.
    pub config: NvmConfig,
    /// Its measured metrics.
    pub metrics: Metrics,
    /// Whether any configuration satisfied the constraints (when false,
    /// the returned config maximizes the primary goal uncon­strained —
    /// the best that exists).
    pub feasible: bool,
}

/// Search `dataset` for the objective-optimal configuration — the paper's
/// *ideal policy* (Section 6.2: "selected by a brute-force search through
/// the whole configuration space").
///
/// # Panics
/// Panics on an empty dataset.
#[must_use]
pub fn ideal_for(dataset: &SweepDataset, objective: &Objective) -> IdealSearch {
    assert!(!dataset.configs.is_empty(), "empty sweep dataset");
    match objective.select(&dataset.metrics) {
        Some(i) => IdealSearch {
            config: dataset.configs[i],
            metrics: dataset.metrics[i],
            feasible: true,
        },
        None => {
            // Nothing satisfies the constraints: fall back to the best
            // primary score so callers can still report a row.
            let best = (0..dataset.metrics.len())
                .max_by(|&a, &b| {
                    objective
                        .primary
                        .score(&dataset.metrics[a])
                        .total_cmp(&objective.primary.score(&dataset.metrics[b]))
                })
                .expect("nonempty");
            IdealSearch {
                config: dataset.configs[best],
                metrics: dataset.metrics[best],
                feasible: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CACHE_VERSION;
    use mct_core::ConfigSpace;

    fn dataset() -> SweepDataset {
        let space = ConfigSpace::without_wear_quota();
        let metrics: Vec<Metrics> = space
            .iter()
            .map(|c| Metrics {
                ipc: 1.5 - 0.2 * c.fast_latency,
                lifetime_years: 2.5 * c.slow_latency * c.slow_latency,
                energy_j: 5.0 + c.slow_latency,
            })
            .collect();
        SweepDataset {
            version: CACHE_VERSION,
            workload: "synthetic".into(),
            scale: "quick".into(),
            stride: 1,
            configs: space.configs().to_vec(),
            metrics,
        }
    }

    #[test]
    fn finds_feasible_optimum() {
        let res = ideal_for(&dataset(), &Objective::paper_default(8.0));
        assert!(res.feasible);
        assert!(res.metrics.lifetime_years >= 8.0);
        // Lifetime >= 8 needs slow_latency^2 >= 3.2 => slow >= 2.0; energy
        // minimization inside the IPC window prefers the smallest such.
        assert!(res.config.slow_latency >= 2.0);
    }

    #[test]
    fn infeasible_reports_best_effort() {
        let res = ideal_for(&dataset(), &Objective::paper_default(1e9));
        assert!(!res.feasible);
        // Best-effort: maximize IPC => smallest fast latency.
        assert_eq!(res.config.fast_latency, 1.0);
    }
}
