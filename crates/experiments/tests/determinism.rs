//! Parallel sweeps must be bit-identical to a serial measurement loop.
//!
//! The sweep engine hands disjoint `&mut` result chunks to scoped
//! threads; nothing about scheduling may leak into the physics. This
//! test measures 64+ configurations serially on one warmed rig, then
//! replays the same sweep at several worker counts and demands
//! bit-for-bit equal metrics.

use mct_core::{ConfigSpace, NvmConfig};
use mct_experiments::{par_map, sweep_with_threads, Scale, WarmedRig, EXPERIMENT_SEED};
use mct_sim::FaultPlan;
use mct_workloads::Workload;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; CI runs this suite under --release"
)]
fn parallel_sweep_is_bit_identical_to_serial() {
    let space = ConfigSpace::without_wear_quota();
    let stride = (space.len() / 64).max(1);
    let configs: Vec<NvmConfig> = space
        .configs()
        .iter()
        .step_by(stride)
        .take(64)
        .copied()
        .collect();
    assert!(configs.len() >= 64, "need at least 64 configurations");

    // The reference: one warmed rig, measured strictly serially.
    let rig = WarmedRig::new(Workload::Gups, Scale::Quick, EXPERIMENT_SEED);
    let serial: Vec<_> = configs.iter().map(|c| rig.measure(c)).collect();

    for threads in [1usize, 2, 3, 8] {
        let par = sweep_with_threads(
            Workload::Gups,
            &configs,
            Scale::Quick,
            EXPERIMENT_SEED,
            threads,
        );
        assert_eq!(par.len(), serial.len(), "threads={threads}");
        for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
            assert_eq!(
                a.ipc.to_bits(),
                b.ipc.to_bits(),
                "ipc differs at config {i} with {threads} threads"
            );
            assert_eq!(
                a.lifetime_years.to_bits(),
                b.lifetime_years.to_bits(),
                "lifetime differs at config {i} with {threads} threads"
            );
            assert_eq!(
                a.energy_j.to_bits(),
                b.energy_j.to_bits(),
                "energy differs at config {i} with {threads} threads"
            );
        }
    }
}

/// The interleaved rig-set loop's contract, differential form: sweeps
/// whose config counts leave ragged trailing batches (smaller than the
/// rig-set batch size) must still be bit-identical to the serial
/// per-config loop at every worker count. Sizes 3 and 5 exercise a
/// single short batch; 19 exercises full batches plus a short tail.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; CI runs this suite under --release"
)]
fn ragged_rig_set_batches_sweep_bit_identical_to_serial() {
    let space = ConfigSpace::without_wear_quota();
    let stride = (space.len() / 19).max(1);
    let configs: Vec<NvmConfig> = space
        .configs()
        .iter()
        .step_by(stride)
        .take(19)
        .copied()
        .collect();
    let rig = WarmedRig::new(Workload::Stream, Scale::Quick, EXPERIMENT_SEED);
    for n in [3usize, 5, 19] {
        let serial: Vec<_> = configs[..n].iter().map(|c| rig.measure(c)).collect();
        for threads in [1usize, 2, 8] {
            let par = sweep_with_threads(
                Workload::Stream,
                &configs[..n],
                Scale::Quick,
                EXPERIMENT_SEED,
                threads,
            );
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(
                    a.ipc.to_bits(),
                    b.ipc.to_bits(),
                    "ipc differs at config {i} with n={n} threads={threads}"
                );
                assert_eq!(
                    a.lifetime_years.to_bits(),
                    b.lifetime_years.to_bits(),
                    "lifetime differs at config {i} with n={n} threads={threads}"
                );
                assert_eq!(
                    a.energy_j.to_bits(),
                    b.energy_j.to_bits(),
                    "energy differs at config {i} with n={n} threads={threads}"
                );
            }
        }
    }
}

/// The fault layer's zero-overhead contract, differential form: a rig
/// with an armed-but-*empty* [`FaultPlan`] must measure bit-identically
/// to an unarmed rig, at every worker count. Every fault hook is a
/// single `Option`-gated branch whose empty-runtime body draws nothing
/// and perturbs nothing, so the physics — and therefore every bit of
/// every metric — must match.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; CI runs this suite under --release"
)]
fn armed_empty_fault_plan_sweeps_bit_identical_to_unarmed() {
    let space = ConfigSpace::without_wear_quota();
    let stride = (space.len() / 32).max(1);
    let configs: Vec<NvmConfig> = space
        .configs()
        .iter()
        .step_by(stride)
        .take(32)
        .copied()
        .collect();

    let unarmed = WarmedRig::new(Workload::Gups, Scale::Quick, EXPERIMENT_SEED);
    let mut armed = WarmedRig::new(Workload::Gups, Scale::Quick, EXPERIMENT_SEED);
    armed.arm_faults(&FaultPlan::empty(42));

    for threads in [1usize, 2, 8] {
        let base = par_map(&configs, threads, |c| unarmed.measure(c));
        let faulted = par_map(&configs, threads, |c| armed.measure(c));
        for (i, (a, b)) in base.iter().zip(&faulted).enumerate() {
            assert_eq!(
                a.ipc.to_bits(),
                b.ipc.to_bits(),
                "ipc differs at config {i} with {threads} threads"
            );
            assert_eq!(
                a.lifetime_years.to_bits(),
                b.lifetime_years.to_bits(),
                "lifetime differs at config {i} with {threads} threads"
            );
            assert_eq!(
                a.energy_j.to_bits(),
                b.energy_j.to_bits(),
                "energy differs at config {i} with {threads} threads"
            );
        }
    }
}

/// Crash-safe persistence must have ZERO behavioral footprint: a
/// controller run with `persist: None` (the default everywhere) and a
/// run with a live state store attached must produce bit-identical
/// outcomes — the store only *observes* the decision sequence, it never
/// perturbs it. Differential companion to the kill-and-recover harness
/// (`tests/crash_recovery.rs` at the workspace root).
#[test]
fn persistence_observation_is_bit_invisible() {
    use mct_core::{Controller, ControllerConfig, Objective, Outcome, PersistConfig};

    fn run(persist: Option<PersistConfig>) -> Outcome {
        let mut cfg = ControllerConfig::quick_demo();
        cfg.seed = EXPERIMENT_SEED;
        cfg.persist = persist;
        let mut controller = Controller::new(cfg, Objective::paper_default(8.0));
        controller.run(&mut Workload::Ocean.source(EXPERIMENT_SEED))
    }

    fn assert_bits(label: &str, a: &Outcome, b: &Outcome) {
        assert_eq!(
            a.final_metrics.ipc.to_bits(),
            b.final_metrics.ipc.to_bits(),
            "{label}: IPC bits differ"
        );
        assert_eq!(
            a.final_metrics.lifetime_years.to_bits(),
            b.final_metrics.lifetime_years.to_bits(),
            "{label}: lifetime bits differ"
        );
        assert_eq!(
            a.final_metrics.energy_j.to_bits(),
            b.final_metrics.energy_j.to_bits(),
            "{label}: energy bits differ"
        );
        assert_eq!(a, b, "{label}: outcomes differ");
    }

    let bare = run(None);
    let bare_again = run(None);
    assert_bits("persist=None repeatability", &bare_again, &bare);

    let dir = mct_persist::TempDir::new("mct-determinism-persist");
    let observed = run(Some(PersistConfig::fresh(dir.path().display().to_string())));
    assert_bits("persist observation", &observed, &bare);
}
