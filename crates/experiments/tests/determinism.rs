//! Parallel sweeps must be bit-identical to a serial measurement loop.
//!
//! The sweep engine hands disjoint `&mut` result chunks to scoped
//! threads; nothing about scheduling may leak into the physics. This
//! test measures 64+ configurations serially on one warmed rig, then
//! replays the same sweep at several worker counts and demands
//! bit-for-bit equal metrics.

use mct_core::{ConfigSpace, NvmConfig};
use mct_experiments::{sweep_with_threads, Scale, WarmedRig, EXPERIMENT_SEED};
use mct_workloads::Workload;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug builds; CI runs this suite under --release"
)]
fn parallel_sweep_is_bit_identical_to_serial() {
    let space = ConfigSpace::without_wear_quota();
    let stride = (space.len() / 64).max(1);
    let configs: Vec<NvmConfig> = space
        .configs()
        .iter()
        .step_by(stride)
        .take(64)
        .copied()
        .collect();
    assert!(configs.len() >= 64, "need at least 64 configurations");

    // The reference: one warmed rig, measured strictly serially.
    let rig = WarmedRig::new(Workload::Gups, Scale::Quick, EXPERIMENT_SEED);
    let serial: Vec<_> = configs.iter().map(|c| rig.measure(c)).collect();

    for threads in [1usize, 2, 3, 8] {
        let par = sweep_with_threads(
            Workload::Gups,
            &configs,
            Scale::Quick,
            EXPERIMENT_SEED,
            threads,
        );
        assert_eq!(par.len(), serial.len(), "threads={threads}");
        for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
            assert_eq!(
                a.ipc.to_bits(),
                b.ipc.to_bits(),
                "ipc differs at config {i} with {threads} threads"
            );
            assert_eq!(
                a.lifetime_years.to_bits(),
                b.lifetime_years.to_bits(),
                "lifetime differs at config {i} with {threads} threads"
            );
            assert_eq!(
                a.energy_j.to_bits(),
                b.energy_j.to_bits(),
                "energy differs at config {i} with {threads} threads"
            );
        }
    }
}
