//! The per-config grain cache must be invisible to the physics.
//!
//! A cache hit has to be bit-identical to a fresh measurement at the
//! same seed — `to_bits` on every `Metrics` field, not an epsilon — and
//! a corrupted or truncated store file must degrade to a re-measurement,
//! never a crash or a wrong number.

use std::fs;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use mct_core::NvmConfig;
use mct_experiments::cache::{cached_measurement, grain_key, GrainStore};
use mct_experiments::{measure_one, Scale, EXPERIMENT_SEED};
use mct_workloads::Workload;

#[test]
fn cache_hit_is_bit_identical_and_corruption_is_survivable() {
    // A per-test unique dir (auto-cleaned on drop), not a pid-derived
    // path: a same-pid re-run after an aborted test must never see the
    // previous run's store file.
    let dir = mct_persist::TempDir::new("mct-cache-roundtrip");
    let path = dir.join("grains_roundtrip.jsonl");

    let workload = Workload::Gups;
    let scale = Scale::Smoke;
    let cfg = NvmConfig::default_config();
    let budget = workload.detailed_insts(scale.detailed_factor());
    let key = grain_key(workload, EXPERIMENT_SEED, budget, &cfg);

    // Populate the store through the miss path, then measure fresh.
    let store = GrainStore::open(path.clone());
    let computes = AtomicUsize::new(0);
    let first = cached_measurement(&store, key, || {
        computes.fetch_add(1, Ordering::SeqCst);
        measure_one(workload, &cfg, scale, EXPERIMENT_SEED)
    });
    assert_eq!(computes.load(Ordering::SeqCst), 1, "first call must miss");
    let fresh = measure_one(workload, &cfg, scale, EXPERIMENT_SEED);
    assert_eq!(first.ipc.to_bits(), fresh.ipc.to_bits());
    assert_eq!(
        first.lifetime_years.to_bits(),
        fresh.lifetime_years.to_bits()
    );
    assert_eq!(first.energy_j.to_bits(), fresh.energy_j.to_bits());

    // Reopen from disk (not the in-memory map): the persisted entry must
    // hit, skip the compute, and stay bit-identical.
    let reopened = GrainStore::open(path.clone());
    assert_eq!(reopened.len(), 1, "one persisted grain expected");
    let hit = cached_measurement(&reopened, key, || {
        panic!("persisted entry must satisfy the lookup")
    });
    assert_eq!(hit.ipc.to_bits(), fresh.ipc.to_bits());
    assert_eq!(hit.lifetime_years.to_bits(), fresh.lifetime_years.to_bits());
    assert_eq!(hit.energy_j.to_bits(), fresh.energy_j.to_bits());

    // Corrupt the store: truncate the valid line mid-record and append
    // garbage. Loading must reject both without crashing, and the lookup
    // must fall back to a re-measurement that still matches fresh bits.
    let text = fs::read_to_string(&path).expect("read store file");
    let truncated = &text[..text.len() / 2];
    let mut f = fs::File::create(&path).expect("rewrite store file");
    write!(f, "{truncated}\nnot json at all\n{{\"version\":1}}\n").expect("write corruption");
    drop(f);

    let corrupted = GrainStore::open(path.clone());
    assert!(corrupted.is_empty(), "corrupt lines must be discarded");
    let computes = AtomicUsize::new(0);
    let remeasured = cached_measurement(&corrupted, key, || {
        computes.fetch_add(1, Ordering::SeqCst);
        measure_one(workload, &cfg, scale, EXPERIMENT_SEED)
    });
    assert_eq!(
        computes.load(Ordering::SeqCst),
        1,
        "corrupt entry must re-measure"
    );
    assert_eq!(remeasured.ipc.to_bits(), fresh.ipc.to_bits());
    assert_eq!(
        remeasured.lifetime_years.to_bits(),
        fresh.lifetime_years.to_bits()
    );
    assert_eq!(remeasured.energy_j.to_bits(), fresh.energy_j.to_bits());

    // The re-measurement was re-recorded: a final reopen hits again.
    let healed = GrainStore::open(path);
    assert_eq!(
        healed.get(key).map(|m| m.ipc.to_bits()),
        Some(fresh.ipc.to_bits())
    );
}
