//! Race and robustness tests for the work-stealing grain scheduler.
//!
//! Two properties the pipeline's determinism contract rests on:
//!
//! 1. a worker panicking mid-grain propagates to the caller — no
//!    deadlock, no lost lock, and the scheduler is immediately usable
//!    again afterwards;
//! 2. hammering `steal()` with every worker-count shape produces
//!    bit-identical output — scheduling is invisible in the results.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use mct_experiments::sched::run_grains;

/// A deterministic, unevenly-priced grain: a few thousand logistic-map
/// iterations whose count varies by index, so some grains are ~100x
/// slower than others and stealing actually happens.
fn chaotic_grain(idx: usize) -> f64 {
    let iters = 100 + (idx * 7919) % 10_000;
    let mut x = 0.2 + (idx as f64) * 1e-6;
    for _ in 0..iters {
        x = 3.9 * x * (1.0 - x);
    }
    x
}

#[test]
fn worker_panic_mid_grain_propagates_and_scheduler_survives() {
    let items: Vec<usize> = (0..256).collect();
    for round in 0..3 {
        let panic_at = 64 * round + 17;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_grains(&items, 8, |&x| {
                assert!(x != panic_at, "injected failure at {panic_at}");
                chaotic_grain(x)
            })
        }));
        assert!(
            result.is_err(),
            "round {round}: panic must reach the caller"
        );

        // The scheduler holds no global locks across calls: a fresh run
        // right after the panic must complete and agree with serial.
        let serial: Vec<f64> = items.iter().map(|&x| chaotic_grain(x)).collect();
        let recovered = run_grains(&items, 8, |&x| chaotic_grain(x));
        assert_eq!(
            recovered.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "round {round}: post-panic run must be bit-identical to serial"
        );
    }
}

#[test]
fn panic_in_every_position_never_deadlocks() {
    // Panic at the first grain a worker sees, at a stolen grain, and at
    // the last grain: all must propagate rather than hang the join.
    let items: Vec<usize> = (0..64).collect();
    for &panic_at in &[0usize, 1, 31, 62, 63] {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_grains(&items, 4, |&x| {
                assert!(x != panic_at, "injected failure");
                chaotic_grain(x)
            })
        }));
        assert!(result.is_err(), "panic at {panic_at} must propagate");
    }
}

#[test]
fn steal_hammer_is_bit_identical_across_worker_counts() {
    // 512 grains, a blocked owner forcing mass stealing, repeated
    // rounds: the output must be byte-for-byte the single-threaded
    // answer no matter how many workers fought over the deques.
    let n = 512usize;
    let items: Vec<usize> = (0..n).collect();
    let serial: Vec<u64> = items.iter().map(|&x| chaotic_grain(x).to_bits()).collect();

    for &workers in &[1usize, 2, 8, 16] {
        for round in 0..4 {
            let got = run_grains(&items, workers, |&x| chaotic_grain(x));
            let bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits, serial,
                "workers={workers} round={round}: scheduling leaked into results"
            );
        }
    }
}

#[test]
fn steal_hammer_under_a_blocked_owner_stays_deterministic() {
    // Worker 0 blocks on its first grain until everyone else finishes,
    // so its whole queue must be stolen — the most steal-heavy schedule
    // possible. Results must still be bit-identical to serial.
    let n = 256usize;
    let items: Vec<usize> = (0..n).collect();
    let serial: Vec<u64> = items.iter().map(|&x| chaotic_grain(x).to_bits()).collect();

    for &workers in &[2usize, 8, 16] {
        let done = AtomicUsize::new(0);
        let got = run_grains(&items, workers, |&x| {
            if x == 0 {
                while done.load(Ordering::SeqCst) < n - 1 {
                    std::thread::yield_now();
                }
            }
            let r = chaotic_grain(x);
            done.fetch_add(1, Ordering::SeqCst);
            r
        });
        let bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            bits, serial,
            "workers={workers}: stolen grains reordered output"
        );
    }
}
