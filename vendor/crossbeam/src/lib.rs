//! Offline stand-in for `crossbeam`, covering `crossbeam::scope`.
//!
//! Built on `std::thread::scope` (stable since 1.63), but preserving
//! crossbeam's API shape: the closure receives a `&Scope` whose `spawn`
//! passes the scope back to the worker closure, and `scope(...)` returns
//! `Result<R, Box<dyn Any + Send>>` where `Err` carries the payload of a
//! panicked worker (std's scope would instead propagate the panic).

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives this scope again, as in
    /// crossbeam, so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        })
    }
}

/// Run `f` with a scope handle, joining all spawned threads before
/// returning. Worker panics are collected into `Err` rather than unwound.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        })
    }))
}

/// Parity with the real crate's module layout.
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_workers_share_stack_state() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        })
        .expect("no worker panicked");
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("no panic");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
