//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free API (`lock()` returns the guard directly, no `Result`),
//! implemented over `std::sync`. A poisoned std lock — only possible if a
//! holder panicked — is recovered via `into_inner` semantics, matching
//! parking_lot's behaviour of not propagating poison.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex; mirrors `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Poison-free reader-writer lock; mirrors `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_blocks_while_held() {
        let m = Mutex::new(0u32);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
