//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports non-generic structs (named, tuple, unit) and enums (unit,
//! tuple, struct variants) with serde's externally-tagged default
//! representation, plus the `#[serde(skip)]` and `#[serde(default)]`
//! field attributes. Anything outside that subset is a compile error, so
//! unsupported shapes fail loudly rather than misbehaving.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote` available
//! offline): the input item is parsed with a small hand-rolled scanner
//! and the generated impl is assembled as source text.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use std::fmt::Write as _;

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// Derive `serde::Serialize` (see the crate docs for the supported
/// subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (see the crate docs for the supported
/// subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&str, &Item) -> String) -> TokenStream {
    let (name, item) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => return compile_error(&msg),
    };
    generate(&name, &item)
        .parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive internal error: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal compile_error")
}

// ------------------------------------------------------------- parsing

/// Attributes found on a field or item: `(skip, default)`.
#[derive(Default, Clone, Copy)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
}

fn parse_item(input: TokenStream) -> Result<(String, Item), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Leading attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i)?;

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Item::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Item::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Item::UnitStruct)),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Item::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        kw => Err(format!("cannot derive serde traits for `{kw}` items")),
    }
}

/// Advance past `#[...]` attributes and `pub` / `pub(...)` visibility.
/// Returns the serde attrs seen, for callers that care.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::default();
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
                    return Err("malformed attribute".to_string());
                };
                let parsed = parse_serde_attr(g.stream())?;
                attrs.skip |= parsed.skip;
                attrs.default |= parsed.default;
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(attrs),
        }
    }
}

/// Parse the inside of one `#[...]` attribute; non-serde attributes (doc
/// comments etc.) are ignored.
fn parse_serde_attr(stream: TokenStream) -> Result<SerdeAttrs, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut attrs = SerdeAttrs::default();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(attrs),
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return Err("malformed #[serde(...)] attribute".to_string());
    };
    for t in g.stream() {
        match t {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" => attrs.skip = true,
                "default" => attrs.default = true,
                other => {
                    return Err(format!(
                        "serde stand-in derive does not support #[serde({other})]"
                    ))
                }
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => return Err(format!("unsupported serde attribute token {other:?}")),
        }
    }
    Ok(attrs)
}

/// Skip one field type: tokens up to a top-level comma, tracking angle
/// brackets (`Vec<HashMap<K, V>>` has commas that are not separators).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs_and_vis(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // separating comma (or end)
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Visibility and attributes may precede each element type.
        let _ = skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1; // separating comma (or end)
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip `= discriminant` if present, then the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ------------------------------------------------------------- codegen

fn gen_serialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(fields) => {
            let mut s =
                String::from("let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                let _ = writeln!(
                    s,
                    "__m.push(({:?}.to_string(), ::serde::Serialize::serialize_content(&self.{})));",
                    f.name, f.name
                );
            }
            s.push_str("::serde::Content::Map(__m)");
            s
        }
        Item::TupleStruct(1) => "::serde::Serialize::serialize_content(&self.0)".to_string(),
        Item::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Item::UnitStruct => "::serde::Content::Null".to_string(),
        Item::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let arm = match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Content::Str({v:?}.to_string()),",
                        v = v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::serialize_content(__f0))]),",
                        v = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let sers: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize_content(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Seq(vec![{sers}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            sers = sers.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::serialize_content({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![({v:?}.to_string(), \
                             ::serde::Content::Map(vec![{pushes}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            pushes = pushes.join(", ")
                        )
                    }
                };
                s.push_str(&arm);
                s.push('\n');
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}"
    )
}

fn gen_named_field_inits(ty: &str, fields: &[Field], map_var: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            let _ = writeln!(s, "{}: ::std::default::Default::default(),", f.name);
        } else if f.default {
            let _ = writeln!(
                s,
                "{field}: match ::serde::content_field({map_var}, {field:?}) {{\n\
                 Some(__v) => ::serde::Deserialize::deserialize_content(__v)?,\n\
                 None => ::std::default::Default::default(),\n}},",
                field = f.name
            );
        } else {
            let _ = writeln!(
                s,
                "{field}: match ::serde::content_field({map_var}, {field:?}) {{\n\
                 Some(__v) => ::serde::Deserialize::deserialize_content(__v)?,\n\
                 None => return Err(::serde::Error::missing({ty:?}, {field:?})),\n}},",
                field = f.name
            );
        }
    }
    s
}

fn gen_tuple_inits(n: usize, seq_var: &str) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::deserialize_content(&{seq_var}[{i}])?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(fields) => format!(
            "let __map = __c.as_map().ok_or_else(|| \
             ::serde::Error::custom(concat!(\"expected map for \", {name:?})))?;\n\
             Ok({name} {{\n{inits}}})",
            inits = gen_named_field_inits(name, fields, "__map")
        ),
        Item::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_content(__c)?))")
        }
        Item::TupleStruct(n) => format!(
            "let __s = __c.as_seq().ok_or_else(|| \
             ::serde::Error::custom(concat!(\"expected sequence for \", {name:?})))?;\n\
             if __s.len() != {n} {{\n\
             return Err(::serde::Error::custom(\"wrong tuple length\"));\n}}\n\
             Ok({name}({inits}))",
            inits = gen_tuple_inits(*n, "__s")
        ),
        Item::UnitStruct => format!("Ok({name})"),
        Item::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(unit_arms, "{v:?} => Ok({name}::{v}),", v = v.name);
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            data_arms,
                            "{v:?} => Ok({name}::{v}(::serde::Deserialize::deserialize_content(__v)?)),",
                            v = v.name
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let _ = writeln!(
                            data_arms,
                            "{v:?} => {{\n\
                             let __s = __v.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected variant sequence\"))?;\n\
                             if __s.len() != {n} {{\n\
                             return Err(::serde::Error::custom(\"wrong variant arity\"));\n}}\n\
                             Ok({name}::{v}({inits}))\n}}",
                            v = v.name,
                            inits = gen_tuple_inits(*n, "__s")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let _ = writeln!(
                            data_arms,
                            "{v:?} => {{\n\
                             let __vm = __v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected variant map\"))?;\n\
                             Ok({name}::{v} {{\n{inits}}})\n}}",
                            v = v.name,
                            inits = gen_named_field_inits(name, fields, "__vm")
                        );
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 let _ = __v;\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::custom(concat!(\"expected \", {name:?}))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
