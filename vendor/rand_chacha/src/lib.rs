//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`].
//!
//! The keystream is a faithful ChaCha8 implementation (RFC 8439 quarter
//! round, 8 rounds, 64-byte blocks) so seeded streams are high quality and
//! platform-independent — exactly the property the workspace's determinism
//! tests rely on. Stream values are NOT bit-identical to the real
//! `rand_chacha` crate (which interleaves words differently), but every
//! in-repo golden value was produced with this implementation.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use rand::{RngCore, SeedableRng};

pub mod rand_core {
    //! Re-exports matching `rand_chacha::rand_core` paths used in-repo.
    pub use rand::{RngCore, SeedableRng};
}

const ROUNDS: usize = 8;

/// A ChaCha8-based random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce state fed to the block function.
    state: [u32; 16],
    /// Current 64-byte keystream block as 16 little-endian words.
    buffer: [u32; 16],
    /// Next unconsumed word index in `buffer`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    /// The number of 32-bit words consumed so far (diagnostic aid).
    pub fn word_pos(&self) -> u64 {
        let blocks = (self.state[12] as u64) | ((self.state[13] as u64) << 32);
        blocks.saturating_sub(1).wrapping_mul(16) + self.index as u64
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        // "expand 32-byte k" sigma constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2017);
        let mut b = ChaCha8Rng::seed_from_u64(2017);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_changes_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn unit_interval_floats_cover_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), fork.next_u64());
        }
    }
}
