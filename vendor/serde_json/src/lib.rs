//! Offline stand-in for `serde_json`, sufficient for this workspace.
//!
//! Renders and parses JSON text over the vendored `serde` stand-in's
//! [`serde::Content`] data model. Supports everything the workspace relies
//! on: `to_string`, `to_string_pretty`, `from_str`, and a `json_escape`-free
//! round-trip of strings, numbers (u64/i64/f64), booleans, null, arrays,
//! and objects. Non-finite floats serialize as `null` (matching the real
//! serde_json's behaviour of refusing them; we degrade gracefully instead
//! of erroring so telemetry traces never abort a run).

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use serde::{Content, Deserialize, Serialize};
use std::fmt;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content_pretty(&value.serialize_content(), &mut out, 0);
    Ok(out)
}

/// Serialize `value` into a writer as compact JSON.
pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` keeps a trailing `.0` for integral floats so the value
        // re-parses as F64, and round-trips shortest representations.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_content_pretty(c: &Content, out: &mut String, level: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_content_pretty(item, out, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_content_pretty(v, out, level + 1);
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_content(other, out),
    }
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Parse a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse_content(s)?;
    Ok(T::deserialize_content(&content)?)
}

/// Parse a JSON string into the raw `Content` tree.
pub fn parse_content(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(Error::new(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            ))),
            None => Err(Error::new(format!(
                "expected '{}' but input ended",
                b as char
            ))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected keyword '{kw}' at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pair handling for completeness.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::new("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string(&"hi\n\"there\"").unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
        let x: u64 = from_str("42").unwrap();
        assert_eq!(x, 42);
        let f: f64 = from_str("2.0").unwrap();
        assert_eq!(f, 2.0);
        let f: f64 = from_str("3").unwrap();
        assert_eq!(f, 3.0);
        let s: String = from_str("\"hi\\u0041\"").unwrap();
        assert_eq!(s, "hiA");
    }

    #[test]
    fn non_finite_floats_are_null_and_read_back_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let f: f64 = from_str("null").unwrap();
        assert!(f.is_nan());
    }

    #[test]
    fn round_trip_collections() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m: HashMap<Vec<u64>, f64> = HashMap::new();
        m.insert(vec![1, 2], 0.5);
        let s = to_string(&m).unwrap();
        let back: HashMap<Vec<u64>, f64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn parses_nested_objects() {
        let c = parse_content(r#"{"a": [1, -2, 3.5], "b": {"c": null}}"#).unwrap();
        match &c {
            Content::Map(entries) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, "a");
            }
            _ => panic!("expected map"),
        }
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let v = vec![vec![1u64], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_content("1 2").is_err());
        assert!(parse_content("{\"a\":}").is_err());
    }
}
