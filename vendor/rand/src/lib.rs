//! Offline stand-in for `rand` 0.8, covering the API surface this workspace
//! uses: [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (`from_seed`, `seed_from_u64`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Distribution quality matches the real crate where it matters for this
//! repo's determinism tests: `gen::<f64>()` uses the standard 53-bit
//! mantissa construction, `gen_range` over integers uses rejection sampling
//! (no modulo bias), and `shuffle` is Fisher–Yates.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

/// Core random-number source: 32/64-bit words and byte fill.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable RNG; mirrors `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 — the same scheme
    /// rand_core 0.6 uses, so seeded streams are stable and well-mixed.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: reject draws from the biased tail.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $ty)
            }
        }
    )*};
}

int_range!(u64, usize, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`]; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Slice sampling helpers; mirrors `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching rand 0.8's downward iteration.
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod rngs {
    //! Placeholder module for parity with the real crate layout.
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak but full-period mixer for test purposes.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = Counter(1);
        let empty: [u64; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [5u64, 6, 7];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
