//! Offline stand-in for `proptest`, covering the API surface this workspace
//! uses: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! range and tuple strategies, [`Just`], [`any`], `collection::vec`,
//! `option::of`, `prop_oneof!`, and the `proptest!`/`prop_assert!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case index and message but not a minimized input) and no persistence
//! of regression seeds. Generation is fully deterministic — case `i` of any
//! test always sees the same ChaCha8 stream — so failures reproduce exactly.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Deterministic RNG handed to strategies during generation.
pub struct TestRng {
    inner: ChaCha8Rng,
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drive `body` for `config.cases` deterministic cases, panicking on the
/// first failure. Used by the expansion of `proptest!`.
pub fn run_cases<F>(config: ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        // A fixed per-case seed: reruns of a failing case see identical input.
        let seed = 0x70726f70_7465_7374u64 ^ ((case as u64) << 1);
        let mut rng = TestRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        };
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest case {}/{} failed: {}",
                case + 1,
                config.cases,
                e.message
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u64, usize, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical unconstrained strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut TestRng) -> u32 {
        rng.gen::<u32>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> u64 {
        rng.gen::<u64>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

pub struct Any<T> {
    _marker: PhantomData<T>,
}

/// The canonical strategy for `T`; mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

// ---------------------------------------------------------------------------
// Collection / option strategies
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Accepted size specifications for `vec`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, like the real crate's default weight.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(__config, |__rng| {
                    $(let $pat = $crate::Strategy::generate(&$strat, __rng);)*
                    let __body = || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
}

/// The conventional glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        crate::run_cases(ProptestConfig::with_cases(200), |rng| {
            let (a, b, c) = (0u64..10, 1usize..=3, -2.0f64..2.0).generate(rng);
            prop_assert!(a < 10);
            prop_assert!((1..=3).contains(&b));
            prop_assert!((-2.0..2.0).contains(&c));
            Ok(())
        });
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = std::collections::HashSet::new();
        crate::run_cases(ProptestConfig::with_cases(100), |rng| {
            seen.insert(strat.generate(rng));
            Ok(())
        });
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_and_option_strategies_respect_shapes() {
        let strat = crate::collection::vec(crate::option::of(0u32..5), 2..6);
        crate::run_cases(ProptestConfig::with_cases(100), |rng| {
            let v = strat.generate(rng);
            prop_assert!((2..6).contains(&v.len()));
            for item in v {
                if let Some(x) = item {
                    prop_assert!(x < 5);
                }
            }
            Ok(())
        });
    }

    #[test]
    fn flat_map_chains_dependent_strategies() {
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..10, n..=n));
        crate::run_cases(ProptestConfig::with_cases(50), |rng| {
            let v = strat.generate(rng);
            prop_assert!((1..4).contains(&v.len()));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn the_macro_itself_works(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
            prop_assert_eq!(x + 1, 1 + x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_context() {
        crate::run_cases(ProptestConfig::with_cases(5), |rng| {
            let x = (0u64..10).generate(rng);
            prop_assert!(x > 100, "x was {x}");
            Ok(())
        });
    }
}
