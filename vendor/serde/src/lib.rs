//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal serialization framework under the
//! `serde` name. It exposes the subset this workspace actually uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits (via a self-describing
//!   [`Content`] tree rather than serde's visitor-based data model);
//! * `#[derive(Serialize, Deserialize)]` for non-generic structs and
//!   enums, including `#[serde(skip)]` / `#[serde(default)]` field
//!   attributes (re-exported from the companion `serde_derive` crate);
//! * impls for the std types the workspace serializes (numbers, strings,
//!   `Option`, `Vec`, `VecDeque`, `Box`, tuples, arrays, maps).
//!
//! Enum representation follows serde's externally-tagged default: unit
//! variants serialize as strings, data variants as single-entry maps.

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the stand-in's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A string-keyed map, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// View as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a field by name in a serialized map.
pub fn content_field<'a>(map: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// A missing-field error.
    pub fn missing(ty: &str, field: &str) -> Error {
        Error(format!("missing field `{field}` in `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be serialized into a [`Content`] tree.
pub trait Serialize {
    /// Serialize `self` into the data model.
    fn serialize_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserialize a value from the data model.
    ///
    /// # Errors
    /// Returns an [`Error`] when `content` does not describe `Self`.
    fn deserialize_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        u64::deserialize_content(c)
            .and_then(|v| usize::try_from(v).map_err(|_| Error::custom("usize out of range")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let v = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => {
                        i64::try_from(v).map_err(|_| Error::custom("integer out of range"))?
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(v).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        i64::deserialize_content(c)
            .and_then(|v| isize::try_from(v).map_err(|_| Error::custom("isize out of range")))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            // serde_json has no representation for non-finite floats;
            // the stand-in writes them as null and reads null back as NaN.
            Content::Null => Ok(f64::NAN),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        f64::deserialize_content(c).map(|v| v as f32)
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match *c {
            Content::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` leaks the string. The real serde
    /// expresses this as a `'de: 'static` borrow; with an owned data model
    /// the only honest equivalent is `Box::leak`. Fields of this type are
    /// interned name constants in practice, so the leak is bounded.
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Vec::<T>::deserialize_content(c).map(VecDeque::from)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        let v = Vec::<T>::deserialize_content(c)?;
        <[T; N]>::try_from(v).map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$i.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut it = s.iter();
                Ok(($(
                    $t::deserialize_content(
                        it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// Maps serialize as sequences of `[key, value]` pairs so that non-string
// keys (used by in-memory model state) stay representable.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.serialize_content(), v.serialize_content()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Vec::<(K, V)>::deserialize_content(c).map(HashMap::from_iter)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.serialize_content(), v.serialize_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Vec::<(K, V)>::deserialize_content(c).map(BTreeMap::from_iter)
    }
}

// `Content` is its own serialized form (like `serde_json::Value` in the
// real serde ecosystem): identity impls let callers stash arbitrary
// already-serialized payloads inside larger derive'd structs.
impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize_content(_: &Content) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize_content(&42u64.serialize_content()), Ok(42));
        assert_eq!(
            i32::deserialize_content(&(-7i32).serialize_content()),
            Ok(-7)
        );
        assert_eq!(
            bool::deserialize_content(&true.serialize_content()),
            Ok(true)
        );
        assert_eq!(
            String::deserialize_content(&"hi".to_string().serialize_content()),
            Ok("hi".to_string())
        );
        let x = f64::deserialize_content(&1.5f64.serialize_content()).unwrap();
        assert!((x - 1.5).abs() < 1e-12);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(
            Vec::<u64>::deserialize_content(&v.serialize_content()),
            Ok(v)
        );
        let o: Option<u64> = None;
        assert_eq!(
            Option::<u64>::deserialize_content(&o.serialize_content()),
            Ok(None)
        );
        let t = (1u64, "x".to_string());
        assert_eq!(
            <(u64, String)>::deserialize_content(&t.serialize_content()),
            Ok(t)
        );
        let mut m = HashMap::new();
        m.insert(vec![1u64, 2], 3.0f64);
        let back = HashMap::<Vec<u64>, f64>::deserialize_content(&m.serialize_content()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[&vec![1u64, 2]], 3.0);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert!(f64::deserialize_content(&Content::Null).unwrap().is_nan());
    }
}
