//! Offline stand-in for `criterion`, covering the API surface this
//! workspace's benches use: `Criterion::bench_function`/`benchmark_group`,
//! `BenchmarkGroup` (`sample_size`, `measurement_time`, `throughput`,
//! `bench_function`, `bench_with_input`, `finish`), `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then `sample_size`
//! timed samples whose per-iteration mean/min/max are printed as a
//! plain-text report. There is no statistical outlier analysis, HTML
//! output, or baseline comparison — but relative numbers between two
//! benches in the same process are meaningful, which is all the in-repo
//! benches (and the telemetry-overhead bench) need.
//!
//! Honors `--bench` (ignored filter args are fine: harness = false targets
//! receive cargo's extra CLI args, which we accept and treat as substring
//! filters on benchmark names).

#![allow(clippy::all, clippy::pedantic, clippy::nursery)]

use std::time::{Duration, Instant};

/// Throughput annotation; only affects the printed report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the closure under test; `iter` times the supplied routine.
pub struct Bencher<'a> {
    samples: u64,
    /// Mean per-iteration nanoseconds for each sample, filled by `iter`.
    recorded: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run the routine a few times untimed.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        // Calibrate iterations per sample so each sample spans >= ~1ms.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().as_nanos().max(1) as u64;
        let iters_per_sample = (1_000_000 / once).clamp(1, 10_000);

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.recorded.push(nanos / iters_per_sample as f64);
        }
    }
}

fn human_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The harness entry point; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes extra CLI args (e.g. `--bench`, name filters)
        // straight to harness = false targets.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            sample_size: 20,
            filters,
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn report(&self, name: &str, recorded: &[f64], throughput: Option<Throughput>) {
        if recorded.is_empty() {
            return;
        }
        let mean = recorded.iter().sum::<f64>() / recorded.len() as f64;
        let min = recorded.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = recorded.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut line = format!(
            "{name:<55} time: [{} {} {}]",
            human_nanos(min),
            human_nanos(mean),
            human_nanos(max)
        );
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let per_sec = count / (mean / 1e9);
            line.push_str(&format!("  thrpt: {per_sec:.3e} {unit}"));
        }
        println!("{line}");
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if !self.matches(name) {
            return;
        }
        let mut recorded = Vec::new();
        let mut bencher = Bencher {
            samples: self.sample_size,
            recorded: &mut recorded,
        };
        f(&mut bencher);
        self.report(name, &recorded, throughput);
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        // The stand-in sizes samples by iteration count, not wall-clock
        // budget; accepted for API compatibility.
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn scoped_name(&self, id: &str) -> String {
        format!("{}/{}", self.name, id)
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = self.scoped_name(id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion.run_one(&full, self.throughput, f);
        self.criterion.sample_size = saved;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = self.scoped_name(&id.id);
        let saved = self.criterion.sample_size;
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        self.criterion
            .run_one(&full, self.throughput, |b| f(b, input));
        self.criterion.sample_size = saved;
        self
    }

    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut recorded = Vec::new();
        let mut b = Bencher {
            samples: 5,
            recorded: &mut recorded,
        };
        b.iter(|| std::hint::black_box(17u64.wrapping_mul(31)));
        assert_eq!(recorded.len(), 5);
        assert!(recorded.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn group_runs_and_restores_sample_size() {
        let mut c = Criterion {
            sample_size: 3,
            filters: vec![],
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Elements(10));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran > 0);
        assert_eq!(c.sample_size, 3);
    }

    #[test]
    fn filters_skip_nonmatching_names() {
        let mut c = Criterion {
            sample_size: 2,
            filters: vec!["match_me".into()],
        };
        let mut ran = false;
        c.bench_function("other_bench", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("yes_match_me_now", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 40).id, "fit/40");
        assert_eq!(BenchmarkId::from_parameter("lasso").id, "lasso");
    }
}
