//! Custom objectives: the same MCT machinery under the paper's Section
//! 3.2 variants — an embedded system capping energy and a datacenter
//! flooring performance — plus a hand-rolled objective.
//!
//! ```sh
//! cargo run --release --example custom_objective
//! ```

use memory_cocktail_therapy::framework::{
    Constraint, Controller, ControllerConfig, Metric, Objective, OptimizeTarget,
};
use memory_cocktail_therapy::workloads::Workload;

fn run(name: &str, objective: Objective) {
    let workload = Workload::Milc;
    let mut cfg = ControllerConfig::paper_scaled();
    cfg.total_insts = 2_000_000;
    cfg.warmup_insts = workload.warmup_insts();
    let mut controller = Controller::new(cfg, objective);
    let outcome = controller.run(&mut workload.source(42));
    println!(
        "{name:<28} -> [{}]  IPC {:.3}, lifetime {:.1}y, energy {:.2} mJ",
        outcome.chosen_config,
        outcome.final_metrics.ipc,
        outcome.final_metrics.lifetime_years.min(999.0),
        outcome.final_metrics.energy_j * 1e3,
    );
}

fn main() {
    println!("workload: milc; three user-defined objectives\n");

    // The paper's default: lifetime floor, maximize IPC, minimize energy.
    run("paper default (8y floor)", Objective::paper_default(8.0));

    // Embedded: hard energy budget, then performance, then lifetime.
    // (Budget chosen near milc's static-policy energy for a 2M-inst run.)
    run("embedded (energy cap)", Objective::embedded(9e-3));

    // Datacenter: performance floor, maximize lifetime, minimize energy.
    run("datacenter (IPC floor)", Objective::datacenter(0.5));

    // Fully custom: cap energy AND floor lifetime, maximize IPC strictly.
    let custom = Objective {
        constraints: vec![
            Constraint::AtLeast(Metric::Lifetime, 5.0),
            Constraint::AtMost(Metric::Energy, 12e-3),
        ],
        primary: OptimizeTarget::Maximize(Metric::Ipc),
        slack: 1.0,
        tiebreak: OptimizeTarget::Maximize(Metric::Lifetime),
    };
    run("custom (dual constraint)", custom);

    println!(
        "\nEach objective reshapes the feasible region and hence the chosen\n\
         cocktail — the paper's point that optimal configurations are highly\n\
         sensitive to user-defined objectives (Section 3.3.2)."
    );
}
