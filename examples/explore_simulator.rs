//! Substrate tour: drive the NVM simulator directly — no learning — to
//! see the raw tradeoffs MCT optimizes over (paper Section 2's Table 1).
//!
//! ```sh
//! cargo run --release --example explore_simulator
//! ```

use memory_cocktail_therapy::framework::NvmConfig;
use memory_cocktail_therapy::sim::{System, SystemConfig};
use memory_cocktail_therapy::workloads::Workload;

fn measure(workload: Workload, cfg: &NvmConfig) -> memory_cocktail_therapy::sim::stats::RunStats {
    let mut sys = System::new(SystemConfig::default(), cfg.to_policy());
    let mut src = workload.source(7);
    sys.warmup(&mut src, workload.warmup_insts());
    sys.run(&mut src, workload.detailed_insts(0.5))
}

fn main() {
    let workload = Workload::Stream;
    println!("workload: {workload}; exercising individual mellow-writes techniques\n");
    println!(
        "{:<34} {:>7} {:>9} {:>8} {:>7} {:>7} {:>7}",
        "configuration", "ipc", "life(y)", "mJ", "slow%", "cancel", "eager"
    );

    let variants: Vec<(&str, NvmConfig)> = vec![
        ("default (fast 1.0x only)", NvmConfig::default_config()),
        (
            "slower pulses (2.0x)",
            NvmConfig {
                fast_latency: 2.0,
                slow_latency: 2.0,
                ..NvmConfig::default_config()
            },
        ),
        (
            "bank-aware mellow writes",
            NvmConfig {
                bank_aware: true,
                bank_aware_threshold: 2,
                slow_latency: 3.0,
                ..NvmConfig::default_config()
            },
        ),
        (
            "+ write cancellation (slow)",
            NvmConfig {
                bank_aware: true,
                bank_aware_threshold: 2,
                slow_latency: 3.0,
                slow_cancellation: true,
                ..NvmConfig::default_config()
            },
        ),
        (
            "eager mellow writebacks",
            NvmConfig {
                eager_writebacks: true,
                eager_threshold: 4,
                slow_latency: 2.0,
                ..NvmConfig::default_config()
            },
        ),
        ("best static policy", NvmConfig::static_baseline()),
        (
            "wear quota only (8y)",
            NvmConfig::default_config().with_wear_quota(8.0),
        ),
    ];

    for (name, cfg) in variants {
        let stats = measure(workload, &cfg);
        let m = stats.metrics();
        let writes = stats.mem.writes_completed().max(1);
        println!(
            "{:<34} {:>7.3} {:>9.2} {:>8.2} {:>6.1}% {:>7} {:>7}",
            name,
            m.ipc,
            m.lifetime_years.min(999.0),
            m.energy_j * 1e3,
            100.0 * (stats.mem.writes_slow + stats.mem.writes_quota) as f64 / writes as f64,
            stats.mem.cancellations,
            stats.mem.eager_writes,
        );
    }

    println!(
        "\nThe tradeoff surface: slower pulses multiply lifetime quadratically but\n\
         cost IPC; cancellation buys read latency back at a wear cost; eager\n\
         writebacks use idle banks; wear quota enforces a floor by brute force.\n\
         MCT's job is picking the right cocktail per application."
    );
}
