//! Quickstart: run Memory Cocktail Therapy on one workload.
//!
//! MCT samples a handful of NVM configurations at runtime, learns
//! IPC/lifetime/energy models, and picks the configuration that maximizes
//! performance under an 8-year lifetime floor while minimizing energy —
//! then keeps monitoring with health checks and phase detection.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use memory_cocktail_therapy::framework::{Controller, ControllerConfig, NvmConfig, Objective};
use memory_cocktail_therapy::workloads::Workload;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Lbm);
    println!("workload: {workload}");
    println!("objective: lifetime >= 8 years, IPC within 95% of max, minimize energy\n");

    let mut cfg = ControllerConfig::paper_scaled();
    cfg.total_insts = 3_000_000;
    cfg.warmup_insts = workload.warmup_insts();
    let mut controller = Controller::new(cfg, Objective::paper_default(8.0));
    println!(
        "learnable space: {} configurations; runtime samples: {}",
        controller.space().len(),
        controller.samples().len()
    );

    let outcome = controller.run(&mut workload.source(42));

    println!("\n--- result ---");
    println!("chosen configuration: [{}]", outcome.chosen_config);
    println!("  (static baseline:   [{}])", NvmConfig::static_baseline());
    println!(
        "testing-period metrics: IPC {:.3}, lifetime {:.1} years, energy {:.2} mJ",
        outcome.final_metrics.ipc,
        outcome.final_metrics.lifetime_years,
        outcome.final_metrics.energy_j * 1e3,
    );
    println!(
        "sampling overhead: {} insts of sampling vs {} insts of testing (IPC {:.3} vs {:.3})",
        outcome.sampling_insts,
        outcome.testing_insts,
        outcome.sampling_metrics.ipc,
        outcome.final_metrics.ipc,
    );
    println!("phases detected: {}", outcome.phases_detected);
    for (i, seg) in outcome.segments.iter().enumerate() {
        println!(
            "segment {}: chose [{}] (predicted IPC {:.3}, measured {:.3}{})",
            i,
            seg.optimization.config,
            seg.optimization.predicted.ipc,
            seg.testing.ipc,
            if seg.health_fallback {
                ", health-check fell back to baseline"
            } else {
                ""
            },
        );
    }
}
