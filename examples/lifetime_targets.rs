//! Lifetime-target sweep: how MCT's chosen configuration shifts as the
//! user demands 4 → 10 years of NVM lifetime (the paper's Section 3.3.2
//! motivation and Figure 8 scenario).
//!
//! ```sh
//! cargo run --release --example lifetime_targets [workload]
//! ```

use memory_cocktail_therapy::framework::{Controller, ControllerConfig, Objective};
use memory_cocktail_therapy::workloads::Workload;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .and_then(|n| Workload::from_name(&n))
        .unwrap_or(Workload::Leslie3d);
    println!("workload: {workload}\n");
    println!(
        "{:<8} {:>9} {:>12} {:>11}   chosen configuration",
        "target", "ipc", "lifetime_y", "energy_mJ"
    );

    for target in [4.0, 6.0, 8.0, 10.0] {
        let mut cfg = ControllerConfig::paper_scaled();
        cfg.total_insts = 2_000_000;
        cfg.warmup_insts = workload.warmup_insts();
        let mut controller = Controller::new(cfg, Objective::paper_default(target));
        let outcome = controller.run(&mut workload.source(42));
        println!(
            "{:<8} {:>9.3} {:>12.1} {:>11.2}   [{}]",
            format!("{target:.0}y"),
            outcome.final_metrics.ipc,
            outcome.final_metrics.lifetime_years.min(999.0),
            outcome.final_metrics.energy_j * 1e3,
            outcome.chosen_config,
        );
    }
    println!(
        "\nStricter targets generally push MCT toward slower write pulses (more\n\
         endurance) at some IPC cost; the wear-quota fixup backstops the floor."
    );
}
