//! Record/replay: run a CPU-level access stream through the L1/L2
//! front-end once, record the resulting LLC-input trace, and replay it
//! against several NVM policies.
//!
//! This is the two-phase methodology that makes brute-force sweeps cheap
//! (DESIGN.md §2): the L1/L2 behaviour of a fixed instruction stream does
//! not depend on the NVM configuration, so it is computed once.
//!
//! ```sh
//! cargo run --release --example record_replay
//! ```

use memory_cocktail_therapy::framework::NvmConfig;
use memory_cocktail_therapy::sim::cache::FrontEnd;
use memory_cocktail_therapy::sim::trace::{AccessKind, RecordedTrace, TraceEvent};
use memory_cocktail_therapy::sim::{System, SystemConfig};

/// A toy CPU-level generator: a read sweep, a write sweep (dirty lines
/// that eventually reach memory), and a hot scratchpad the L1 absorbs.
fn cpu_level_stream(n: usize) -> Vec<(u64, AccessKind)> {
    let mut out = Vec::with_capacity(n);
    let mut read_cursor = 0u64;
    let mut write_cursor = 0u64;
    for i in 0..n {
        match i % 4 {
            0 => out.push((1_000_000 + (i as u64 % 64), AccessKind::Write)), // scratchpad
            1 => {
                write_cursor += 1;
                out.push((2_000_000 + write_cursor, AccessKind::Write)); // dirty sweep
            }
            _ => {
                read_cursor += 1;
                out.push((read_cursor, AccessKind::Read));
            }
        }
    }
    out
}

fn main() {
    // Phase 1: record. The front-end filters ~CPU-level accesses down to
    // the (much sparser) LLC-input stream.
    let cpu_stream = cpu_level_stream(400_000);
    let mut fe = FrontEnd::new();
    let mut events = Vec::new();
    let mut gap = 0u64;
    for &(line, kind) in &cpu_stream {
        gap += 12; // ~12 instructions between CPU memory ops
        for (l, k) in fe.filter(line, kind) {
            events.push(TraceEvent {
                gap_insts: gap.max(1),
                kind: k,
                line: l,
            });
            gap = 0;
        }
    }
    println!(
        "recorded {} LLC-input events from {} CPU accesses (L1 hit rate {:.1}%, L2 {:.1}%)",
        events.len(),
        cpu_stream.len(),
        100.0 * fe.l1_stats().hit_rate(),
        100.0 * fe.l2_stats().hit_rate()
    );
    let trace = RecordedTrace::new(events);

    // Phase 2: replay the same trace against different policies.
    println!(
        "\n{:<28} {:>7} {:>10} {:>9}",
        "policy", "ipc", "life(y)", "rowhit%"
    );
    for (name, cfg) in [
        ("default", NvmConfig::default_config()),
        (
            "slow 2.5x",
            NvmConfig {
                fast_latency: 2.5,
                slow_latency: 2.5,
                ..NvmConfig::default_config()
            },
        ),
        ("static baseline", NvmConfig::static_baseline()),
    ] {
        let mut sys = System::new(SystemConfig::default(), cfg.to_policy());
        let mut src = trace.clone();
        let stats = sys.run(&mut src, 2_000_000);
        println!(
            "{:<28} {:>7.3} {:>10.2} {:>8.1}%",
            name,
            stats.ipc(),
            stats.lifetime_years.min(999.0),
            100.0 * stats.mem.row_hits as f64 / stats.mem.reads_completed.max(1) as f64,
        );
    }
    println!("\nIdentical input stream, different memory policies — the replay half\nof the sweep engine in `mct-experiments`.");
}
