//! Multi-program mixes on the 4-core system (paper Section 6.2.5):
//! default vs static vs MCT on one of Table 11's mixes.
//!
//! ```sh
//! cargo run --release --example multiprogram [mix1..mix6]
//! ```

use memory_cocktail_therapy::framework::NvmConfig;
use memory_cocktail_therapy::sim::system::{MultiSystem, SystemConfig};
use memory_cocktail_therapy::workloads::Mix;

fn main() {
    let mix = std::env::args()
        .nth(1)
        .and_then(|n| Mix::all().into_iter().find(|m| m.name() == n))
        .unwrap_or(Mix::Mix1);
    let members: Vec<&str> = mix.members().iter().map(|w| w.name()).collect();
    println!("mix: {mix} = {}\n", members.join(" + "));

    println!(
        "{:<18} {:>12} {:>10} {:>9}   per-core IPC",
        "policy", "geomean IPC", "life(y)", "mJ"
    );
    for (name, cfg) in [
        ("default", NvmConfig::default_config()),
        ("static baseline", NvmConfig::static_baseline()),
    ] {
        let mut sys = MultiSystem::new(SystemConfig::multicore_4(), cfg.to_policy(), 4);
        let mut sources = mix.sources(42);
        sys.warmup(&mut sources, 2_000_000);
        let stats = sys.run(&mut sources, 500_000);
        let per_core: Vec<String> = stats
            .per_core_ipc
            .iter()
            .map(|i| format!("{i:.2}"))
            .collect();
        println!(
            "{:<18} {:>12.3} {:>10.1} {:>9.2}   [{}]",
            name,
            stats.geomean_ipc(),
            stats.lifetime_years.min(999.0),
            stats.energy.total() * 1e3,
            per_core.join(", "),
        );
    }

    println!(
        "\nFor the full MCT-on-mixes comparison (Figure 10), run:\n\
         cargo run --release -p mct-experiments --bin figure10"
    );
}
