//! Phase adaptation: watch MCT detect ocean's coarse compute/communicate
//! phases and re-run its sampling→predict→optimize pipeline per phase.
//!
//! ```sh
//! cargo run --release --example phase_adaptation
//! ```

use memory_cocktail_therapy::framework::{
    Controller, ControllerConfig, Objective, PhaseDetectorConfig,
};
use memory_cocktail_therapy::workloads::Workload;

fn main() {
    let workload = Workload::Ocean;
    println!("workload: {workload} (alternating 2M-instruction coarse phases)\n");

    let mut cfg = ControllerConfig::paper_scaled();
    cfg.total_insts = 9_000_000;
    cfg.warmup_insts = workload.warmup_insts();
    cfg.phase = PhaseDetectorConfig {
        window_insts: 50_000,
        history_windows: 60,
        recent_windows: 6,
        score_threshold: 15.0,
    };
    let mut controller = Controller::new(cfg, Objective::paper_default(8.0));
    let outcome = controller.run(&mut workload.source(42));

    println!("segments (one per detected phase):");
    for (i, seg) in outcome.segments.iter().enumerate() {
        println!(
            "  {}: sampled {:>7} insts, tested {:>8} insts -> [{}] (measured IPC {:.3}{})",
            i,
            seg.sampling_insts,
            seg.testing_insts,
            seg.optimization.config,
            seg.testing.ipc,
            if seg.health_fallback {
                "; fell back to baseline"
            } else {
                ""
            },
        );
    }
    println!("\nphases detected: {}", outcome.phases_detected);
    println!(
        "aggregate testing metrics: IPC {:.3}, lifetime {:.1}y, energy {:.2} mJ",
        outcome.final_metrics.ipc,
        outcome.final_metrics.lifetime_years.min(999.0),
        outcome.final_metrics.energy_j * 1e3,
    );
    println!(
        "\nEach dramatic phase change clears the learned state and triggers a\n\
         fresh sampling period (paper Section 5.1/Figure 5); minor fluctuations\n\
         are absorbed by normalization and cyclic fine-grained sampling."
    );
}
